#include "sim/timer_wheel.hpp"

#include <cassert>

namespace steelnet::sim {

TimerWheel::TimerWheel(SimTime tick, SimTime origin)
    : tick_(tick), origin_(origin) {
  assert(tick_.nanos() > 0 && "TimerWheel tick must be positive");
}

std::uint32_t TimerWheel::alloc_node() {
  if (free_head_ != kInvalidTimer) {
    const std::uint32_t id = free_head_;
    free_head_ = nodes_[id].next;
    return id;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void TimerWheel::append(std::uint16_t slot, std::uint32_t id) {
  Node& n = nodes_[id];
  n.slot = slot;
  n.prev = slots_[slot].tail;
  n.next = kInvalidTimer;
  if (slots_[slot].tail != kInvalidTimer) {
    nodes_[slots_[slot].tail].next = id;
  } else {
    slots_[slot].head = id;
  }
  slots_[slot].tail = id;
}

void TimerWheel::unlink(std::uint32_t id) {
  Node& n = nodes_[id];
  SlotList& list = slots_[n.slot];
  if (n.prev != kInvalidTimer) {
    nodes_[n.prev].next = n.next;
  } else {
    list.head = n.next;
  }
  if (n.next != kInvalidTimer) {
    nodes_[n.next].prev = n.prev;
  } else {
    list.tail = n.prev;
  }
  n.prev = n.next = kInvalidTimer;
}

void TimerWheel::place(std::uint32_t id) {
  Node& n = nodes_[id];
  // The node's tick is strictly ahead of cur_; pick the level whose span
  // covers the remaining delta. Deadlines past the wheel horizon park in
  // the top level and re-cascade as time catches up.
  const std::uint64_t delta = n.tick - cur_;
  std::size_t level = kLevels - 1;
  std::uint64_t slot_tick = cur_ + (kHorizon - 1);  // horizon clamp
  for (std::size_t l = 0; l < kLevels; ++l) {
    if (delta < (std::uint64_t{1} << (kSlotBits * (l + 1)))) {
      level = l;
      slot_tick = n.tick;
      break;
    }
  }
  const std::size_t slot = (slot_tick >> (kSlotBits * level)) & (kSlots - 1);
  append(static_cast<std::uint16_t>(level * kSlots + slot), id);
}

TimerWheel::TimerId TimerWheel::arm(SimTime deadline, std::uint64_t cookie) {
  std::uint64_t t = deadline <= origin_ ? 0 : tick_of(deadline);
  if (t <= cur_) t = cur_ + 1;  // never fire in the tick being processed
  const std::uint32_t id = alloc_node();
  Node& n = nodes_[id];
  n.tick = t;
  n.cookie = cookie;
  n.live = true;
  place(id);
  ++armed_;
  return id;
}

void TimerWheel::cancel(TimerId id) {
  assert(id < nodes_.size() && nodes_[id].live && "cancel of dead timer");
  unlink(id);
  nodes_[id].live = false;
  nodes_[id].next = free_head_;
  free_head_ = id;
  --armed_;
}

void TimerWheel::set_cookie(TimerId id, std::uint64_t cookie) {
  assert(id < nodes_.size() && nodes_[id].live && "set_cookie of dead timer");
  nodes_[id].cookie = cookie;
}

void TimerWheel::advance(SimTime now, std::vector<std::uint64_t>& due) {
  const std::uint64_t target = now <= origin_ ? 0 : tick_of(now);
  if (armed_ == 0) {
    // Nothing to fire or cascade: jump straight to the target tick.
    if (target > cur_) cur_ = target;
    return;
  }
  while (cur_ < target) {
    ++cur_;
    // Crossing a level boundary: pull the covering slot of each higher
    // level down before draining level 0, top level first so entries
    // trickle through intermediate levels in one pass.
    if ((cur_ & (kSlots - 1)) == 0) {
      std::size_t top = 1;
      while (top + 1 < kLevels &&
             ((cur_ >> (kSlotBits * top)) & (kSlots - 1)) == 0) {
        ++top;
      }
      for (std::size_t level = top; level >= 1; --level) {
        const std::size_t slot =
            (cur_ >> (kSlotBits * level)) & (kSlots - 1);
        SlotList& list = slots_[level * kSlots + slot];
        std::uint32_t id = list.head;
        list.head = list.tail = kInvalidTimer;
        while (id != kInvalidTimer) {
          const std::uint32_t next = nodes_[id].next;
          nodes_[id].prev = nodes_[id].next = kInvalidTimer;
          place(id);
          ++cascades_;
          id = next;
        }
      }
    }
    SlotList& list = slots_[cur_ & (kSlots - 1)];
    std::uint32_t id = list.head;
    list.head = list.tail = kInvalidTimer;
    while (id != kInvalidTimer) {
      Node& n = nodes_[id];
      const std::uint32_t next = n.next;
      n.prev = n.next = kInvalidTimer;
      if (n.tick > cur_) {
        // Horizon-clamped entry still in the future: re-place.
        place(id);
        ++cascades_;
      } else {
        due.push_back(n.cookie);
        n.live = false;
        n.next = free_head_;
        free_head_ = id;
        --armed_;
      }
      id = next;
    }
    if (armed_ == 0) {
      cur_ = target;
      break;
    }
  }
}

void TimerWheel::clear() {
  for (SlotList& list : slots_) list.head = list.tail = kInvalidTimer;
  nodes_.clear();
  free_head_ = kInvalidTimer;
  armed_ = 0;
  cur_ = 0;
  cascades_ = 0;
}

}  // namespace steelnet::sim
