#include "sim/partitioner.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <sstream>

namespace steelnet::sim {

const char* to_string(PartitionErrorCode code) {
  switch (code) {
    case PartitionErrorCode::kBadShardCount: return "bad-shard-count";
    case PartitionErrorCode::kBadAssignment: return "bad-assignment";
    case PartitionErrorCode::kProfileMismatch: return "profile-mismatch";
    case PartitionErrorCode::kMalformedProfile: return "malformed-profile";
  }
  return "unknown";
}

namespace {

std::size_t checked_shards(const std::vector<std::uint64_t>& weights,
                           std::size_t shards) {
  if (shards == 0) {
    throw PartitionError(PartitionErrorCode::kBadShardCount,
                         "Partitioner::assign: shards must be >= 1");
  }
  return std::min(shards, weights.size());
}

}  // namespace

std::vector<std::uint32_t> PrefixQuotaPartitioner::assign(
    const std::vector<std::uint64_t>& weights, std::size_t shards) const {
  shards = checked_shards(weights, shards);
  const std::size_t n = weights.size();
  if (n == 0) return {};
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += std::max<std::uint64_t>(w, 1);

  std::vector<std::uint32_t> out(n);
  std::uint64_t prefix = 0;
  std::uint32_t s = 0;
  std::size_t count_in_s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (s + 1 < shards && count_in_s > 0) {
      // Close the current group when its weight quota is met, or when the
      // remaining cells are only just enough to keep every later group
      // nonempty.
      const bool quota_met =
          prefix * shards >= total * (static_cast<std::uint64_t>(s) + 1);
      const bool must_advance = n - i <= shards - 1 - s;
      if (quota_met || must_advance) {
        ++s;
        count_in_s = 0;
      }
    }
    out[i] = s;
    ++count_in_s;
    prefix += std::max<std::uint64_t>(weights[i], 1);
  }
  return out;
}

std::vector<std::uint32_t> LptPartitioner::assign(
    const std::vector<std::uint64_t>& weights, std::size_t shards) const {
  shards = checked_shards(weights, shards);
  const std::size_t n = weights.size();
  if (n == 0) return {};

  std::vector<std::uint64_t> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = std::max<std::uint64_t>(weights[i], 1);

  // Tie-break rule (pinned by tests): a flat profile carries no placement
  // signal, so reproduce the prefix-quota walk bit for bit -- calibration
  // of a uniform floor must not churn an already-good contiguous layout.
  if (std::all_of(w.begin(), w.end(),
                  [&w](std::uint64_t x) { return x == w.front(); })) {
    return PrefixQuotaPartitioner{}.assign(weights, shards);
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&w](std::uint32_t a, std::uint32_t b) {
              return w[a] != w[b] ? w[a] > w[b] : a < b;
            });

  std::vector<std::uint64_t> load(shards, 0);
  std::vector<std::uint32_t> out(n);
  for (const std::uint32_t cell : order) {
    // Least-loaded shard, lowest id on ties: a linear scan keeps the
    // tie-break trivially deterministic and shard counts are single-digit.
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    out[cell] = static_cast<std::uint32_t>(best);
    load[best] += w[cell];
  }
  return out;
}

std::uint64_t PartitionStats::imbalance_permille() const {
  if (shard_load.empty() || total_load == 0) return 1000;
  // max / mean = max * shards / total, scaled to permille.
  return max_load * 1000 * shard_load.size() / total_load;
}

PartitionStats partition_stats(const std::vector<std::uint64_t>& weights,
                               const std::vector<std::uint32_t>& assignment) {
  if (weights.size() != assignment.size()) {
    throw PartitionError(
        PartitionErrorCode::kBadAssignment,
        "partition_stats: " + std::to_string(weights.size()) + " weights vs " +
            std::to_string(assignment.size()) + " assignments");
  }
  PartitionStats st;
  std::uint32_t max_shard = 0;
  for (const std::uint32_t s : assignment) max_shard = std::max(max_shard, s);
  st.shard_load.assign(assignment.empty() ? 0 : max_shard + 1u, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::uint64_t w = std::max<std::uint64_t>(weights[i], 1);
    st.shard_load[assignment[i]] += w;
    st.total_load += w;
  }
  for (const std::uint64_t l : st.shard_load) st.max_load = std::max(st.max_load, l);
  return st;
}

void validate_assignment(const std::vector<std::uint32_t>& assignment,
                         std::size_t n_cells, std::size_t shards) {
  // Same clamp as assign(): shards beyond the cell count cannot all be
  // nonempty, so the contract only covers the first min(shards, n) ids.
  shards = std::min(shards, n_cells);
  if (assignment.size() != n_cells) {
    throw PartitionError(PartitionErrorCode::kBadAssignment,
                         "partitioner returned " +
                             std::to_string(assignment.size()) +
                             " assignments for " + std::to_string(n_cells) +
                             " cells");
  }
  std::vector<bool> used(shards, false);
  for (const std::uint32_t s : assignment) {
    if (s >= shards) {
      throw PartitionError(PartitionErrorCode::kBadAssignment,
                           "partitioner assigned shard " + std::to_string(s) +
                               " with only " + std::to_string(shards) +
                               " shards");
    }
    used[s] = true;
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (!used[s]) {
      throw PartitionError(PartitionErrorCode::kBadAssignment,
                           "partitioner left shard " + std::to_string(s) +
                               " empty");
    }
  }
}

// --- RateProfile ------------------------------------------------------------

std::vector<std::uint64_t> RateProfile::weights() const {
  std::vector<std::uint64_t> w;
  w.reserve(cells.size());
  for (const CellRate& c : cells) {
    w.push_back(std::max<std::uint64_t>(c.events + c.msgs, 1));
  }
  return w;
}

std::string RateProfile::to_text() const {
  std::ostringstream os;
  os << "# steelnet cell-rate profile v1\n";
  os << "cell,events,msgs\n";
  for (const CellRate& c : cells) {
    os << c.name << ',' << c.events << ',' << c.msgs << '\n';
  }
  return os.str();
}

namespace {

std::uint64_t parse_count(const std::string& field, std::size_t line_no) {
  if (field.empty()) {
    throw PartitionError(PartitionErrorCode::kMalformedProfile,
                         "profile line " + std::to_string(line_no) +
                             ": empty count field");
  }
  std::uint64_t v = 0;
  for (const char ch : field) {
    if (ch < '0' || ch > '9') {
      throw PartitionError(PartitionErrorCode::kMalformedProfile,
                           "profile line " + std::to_string(line_no) +
                               ": non-numeric count '" + field + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return v;
}

}  // namespace

RateProfile RateProfile::parse(const std::string& text) {
  RateProfile out;
  std::istringstream is(text);
  std::string line;
  bool header_seen = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    if (!header_seen) {
      if (line != "cell,events,msgs") {
        throw PartitionError(PartitionErrorCode::kMalformedProfile,
                             "profile line " + std::to_string(line_no) +
                                 ": expected header 'cell,events,msgs', got '" +
                                 line + "'");
      }
      header_seen = true;
      continue;
    }
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        line.find(',', c2 + 1) != std::string::npos || c1 == 0) {
      throw PartitionError(PartitionErrorCode::kMalformedProfile,
                           "profile line " + std::to_string(line_no) +
                               ": expected 'name,events,msgs', got '" + line +
                               "'");
    }
    CellRate r;
    r.name = line.substr(0, c1);
    r.events = parse_count(line.substr(c1 + 1, c2 - c1 - 1), line_no);
    r.msgs = parse_count(line.substr(c2 + 1), line_no);
    out.cells.push_back(std::move(r));
  }
  if (!header_seen) {
    throw PartitionError(PartitionErrorCode::kMalformedProfile,
                         "profile has no 'cell,events,msgs' header");
  }
  return out;
}

}  // namespace steelnet::sim
