// steelnet::sim -- the discrete-event simulator.
//
// Single-threaded, fully deterministic: events at equal times fire in
// scheduling order, and all randomness flows through explicitly seeded
// RNG streams (see random.hpp). Identical seeds produce identical traces.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace steelnet::sim {

/// Thrown when a component detects a violated simulation invariant
/// (e.g. scheduling into the past).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventHandle schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `at` (>= now).
  EventHandle schedule_at(SimTime at, EventQueue::Callback cb);

  /// Runs until the queue drains or `deadline` passes. Events exactly at
  /// the deadline still fire. Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the event queue is empty.
  std::uint64_t run();

  /// Executes at most one event; returns false if none is pending.
  bool step();

  /// Earliest pending event time, or SimTime::max() when the queue is
  /// empty. Used by drivers that interleave the local queue with an
  /// external ordered source (the sharded kernel's staged cross-shard
  /// messages).
  [[nodiscard]] SimTime next_event_time() { return queue_.next_time(); }

  /// Moves the clock forward to `at` without firing anything -- the hook
  /// a sharded driver uses to execute an externally ordered action (a
  /// cross-shard message) at its delivery time. Throws SimError when `at`
  /// is in the past or would jump over a pending local event, so protocol
  /// bugs (a message delivered beyond the lookahead window) fail loudly
  /// instead of silently reordering the run.
  void advance_clock_to(SimTime at);

  /// Stops the current run_until/run loop after the in-flight event.
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() { return queue_.size(); }
  /// Events cancelled through handles over the simulator's lifetime --
  /// exposed so sharded-kernel audits can pin the queue's accounting
  /// (live_size/cancelled_total) per cell at any shard count.
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return queue_.cancelled_total();
  }
  /// Callback slots the kernel ever allocated; flat after warm-up when
  /// the slab recycles (see EventQueue::slot_capacity).
  [[nodiscard]] std::size_t event_slot_capacity() const {
    return queue_.slot_capacity();
  }

  /// Resets time to zero and discards all pending events.
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

/// Repeatedly invokes a callback with a fixed period. The callback may stop
/// the task; the task owns no resources beyond its pending event.
class PeriodicTask {
 public:
  /// `fn` is called first at `start`, then every `period` until stop().
  PeriodicTask(Simulator& sim, SimTime start, SimTime period,
               std::function<void()> fn);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] SimTime period() const { return period_; }

  /// Changes the period, effective from the next firing.
  void set_period(SimTime period) { period_ = period; }

 private:
  void arm(SimTime at);

  Simulator& sim_;
  SimTime period_;
  std::function<void()> fn_;
  EventHandle next_;
  bool running_ = true;
  std::uint64_t fired_ = 0;
};

}  // namespace steelnet::sim
