#include "sim/trace.hpp"

#include <ostream>
#include <sstream>
#include <utility>

namespace steelnet::sim {

void Trace::emit(SimTime time, std::string key, std::string value) {
  records_.push_back({time, std::move(key), std::move(value)});
}

std::vector<Trace::Record> Trace::filter(const std::string& key) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (r.key == key) out.push_back(r);
  }
  return out;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

void Trace::write_csv(std::ostream& os) const {
  for (const auto& r : records_) {
    os << r.time.nanos() << ',' << r.key << ',' << r.value << '\n';
  }
}

std::uint64_t Trace::fingerprint() const {
  const std::string csv = to_csv();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : csv) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace steelnet::sim
