// steelnet::sim -- the sharded conservative-PDES driver.
//
// ShardedSimulator partitions a simulation into *cells* -- logical
// processes that each own a full single-threaded Simulator -- and runs
// disjoint groups of cells (shards) on worker threads. Cells interact
// only through latency-stamped ShardChannels; every channel's fixed
// minimum latency supplies the receiver's conservative lookahead, and a
// barrier-free null-message protocol (each cell publishes a monotone
// lower bound on its future send times; each cell advances strictly below
// LBTS = min over inbound channels of published clock + latency) lets
// shards advance independently while never violating causal order.
//
// Determinism contract -- the property every test in tests/sim pins:
// a cell's execution depends only on (its own initial state, its own RNG
// streams, the totally ordered sequence of inbound messages). Inbound
// messages are merged by (deliver_ns, src_cell, seq) and, at equal
// timestamps, delivered *before* local events. Both rules are independent
// of shard count and thread scheduling, so the per-cell event order --
// and every artifact derived from per-cell state -- is byte-identical at
// any shard count, including against run_reference(), the single-threaded
// globally ordered engine.
//
// Thread-safety shape: a cell (its Simulator, EventQueue, staging heap,
// counters) is only ever touched by its owning shard's worker thread.
// The only shared state is the SpscRing of each channel and one published
// -clock atomic per cell. EventQueue/EventHandle are *not* thread-safe
// and never cross shards: scheduling or cancelling onto a remote cell is
// expressed as a message whose handler runs on the owning shard (see the
// cross-shard cancel test).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/partitioner.hpp"
#include "sim/shard_channel.hpp"
#include "sim/simulator.hpp"

namespace steelnet::sim {

/// Typed error of the sharded driver (topology/protocol misuse).
enum class ShardingErrorCode : std::uint8_t {
  kZeroLookahead,     ///< inter-cell channel with latency <= 0
  kSelfChannel,       ///< channel from a cell to itself
  kDuplicateChannel,  ///< second channel for the same (src, dst)
  kBadCell,           ///< cell id out of range
  kNoChannel,         ///< send() to a cell without a channel
  kBadShardCount,     ///< run() with shards == 0
  kAlreadyRan,        ///< run()/run_reference() called twice
  kNoCells,           ///< run() on an empty simulation
};

[[nodiscard]] const char* to_string(ShardingErrorCode code);

class ShardingError : public SimError {
 public:
  ShardingError(ShardingErrorCode code, const std::string& what)
      : SimError(what), code_(code) {}
  [[nodiscard]] ShardingErrorCode code() const { return code_; }

 private:
  ShardingErrorCode code_;
};

/// One executed action of a cell, for fire-order equivalence tests.
/// kind 0 = local simulator event (seq = the cell's executed-event
/// ordinal), kind 1 = delivered cross-shard message (src/seq from the
/// message).
struct FireRecord {
  std::int64_t t_ns = 0;
  std::uint32_t kind = 0;
  std::uint32_t src_cell = 0;
  std::uint64_t seq = 0;

  [[nodiscard]] bool operator==(const FireRecord&) const = default;
};

/// Aggregate outcome of one run. Only `events`, `msgs_delivered`,
/// `msgs_sent` and `beyond_horizon` are deterministic; `rounds`,
/// `push_spins`, `fast_skips`, `clock_publishes` and `wall_seconds`
/// depend on thread scheduling and must never leak into artifacts.
struct ShardRunStats {
  std::size_t shards = 0;
  std::uint64_t events = 0;          ///< local simulator events executed
  std::uint64_t msgs_delivered = 0;  ///< cross-shard messages executed
  std::uint64_t msgs_sent = 0;
  std::uint64_t beyond_horizon = 0;  ///< sent but delivered past horizon
  std::uint64_t rounds = 0;          ///< null-message rounds (timing-dependent)
  std::uint64_t push_spins = 0;      ///< backpressure retries (timing-dependent)
  std::uint64_t fast_skips = 0;      ///< idle-neighbour rounds skipped (timing-dependent)
  std::uint64_t clock_publishes = 0; ///< coalesced pub_ stores (timing-dependent)
  double wall_seconds = 0.0;
};

class ShardedSimulator {
 public:
  class Cell;
  /// Runs at the message's delivery time on the owning shard's thread,
  /// with the cell's clock already advanced to deliver_ns. May schedule
  /// local events and send further messages.
  using MsgHandler = std::function<void(Cell&, const ShardMsg&)>;

  /// One logical process: a private Simulator plus channel endpoints.
  class Cell {
   public:
    [[nodiscard]] Simulator& sim() { return sim_; }
    [[nodiscard]] std::uint32_t id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t weight() const { return weight_; }

    void set_handler(MsgHandler handler) { handler_ = std::move(handler); }

    /// Sends a message to `dst_cell` over the connected channel; delivery
    /// happens at now + channel latency + extra_delay. Must be called
    /// from this cell's own execution context (an event or message
    /// handler). Throws ShardingError{kNoChannel} without a channel.
    void send(std::uint32_t dst_cell, const ShardMsg& payload,
              SimTime extra_delay = SimTime::zero());

    /// Channel latency toward `dst_cell` (the receiver's lookahead
    /// contribution from this cell).
    [[nodiscard]] SimTime latency_to(std::uint32_t dst_cell) const;

    /// Minimum latency over this cell's *inbound* channels -- its
    /// conservative lookahead window. SimTime::max() with no inbound.
    [[nodiscard]] SimTime lookahead() const;

    [[nodiscard]] std::uint64_t msgs_sent() const { return msgs_sent_; }
    [[nodiscard]] std::uint64_t msgs_delivered() const {
      return msgs_delivered_;
    }
    /// Messages that arrived with deliver_ns > horizon (staged, counted,
    /// never executed).
    [[nodiscard]] std::uint64_t msgs_beyond_horizon() const {
      return beyond_horizon_;
    }
    [[nodiscard]] const std::vector<FireRecord>& fire_log() const {
      return fire_log_;
    }

   private:
    friend class ShardedSimulator;
    Cell(ShardedSimulator& owner, std::uint32_t id, std::string name,
         std::uint64_t weight)
        : owner_(owner), id_(id), name_(std::move(name)), weight_(weight) {}

    struct LaterMsg {
      bool operator()(const ShardMsg& x, const ShardMsg& y) const {
        if (x.deliver_ns != y.deliver_ns) return x.deliver_ns > y.deliver_ns;
        if (x.src_cell != y.src_cell) return x.src_cell > y.src_cell;
        return x.seq > y.seq;
      }
    };

    ShardedSimulator& owner_;
    std::uint32_t id_;
    std::string name_;
    std::uint64_t weight_;
    Simulator sim_;
    MsgHandler handler_;
    std::priority_queue<ShardMsg, std::vector<ShardMsg>, LaterMsg> staging_;
    std::vector<ShardChannel*> inbound_;
    std::unordered_map<std::uint32_t, ShardChannel*> out_by_dst_;
    std::uint64_t send_seq_ = 0;
    std::uint64_t msgs_sent_ = 0;
    std::uint64_t msgs_delivered_ = 0;
    std::uint64_t beyond_horizon_ = 0;
    bool done_ = false;
    /// Set once every inbound sender has published the forever sentinel
    /// and one final drain has run: the sentinel is absorbing (a done
    /// cell never sends again), so from then on the snapshot + drain of
    /// cell_round is pure overhead and gets skipped.
    bool inbound_quiet_ = false;
    std::vector<FireRecord> fire_log_;
    /// Owner-thread shadow of pub_, so the publish in cell_round can
    /// skip the atomic store when the frontier did not advance.
    std::int64_t pub_shadow_ = 0;
    std::uint64_t publishes_ = 0;  ///< pub_ stores (timing-dependent)
    /// Published lower bound on this cell's future send times (the null
    /// message). Receivers add their channel latency to form LBTS.
    alignas(64) std::atomic<std::int64_t> pub_{0};
  };

  ShardedSimulator() = default;
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Adds a cell; `weight` drives the balanced partition (e.g. device
  /// count). Returns the cell id (dense, creation order).
  std::uint32_t add_cell(std::string name, std::uint64_t weight = 1);

  /// Connects a directed channel src -> dst with the given minimum
  /// latency (must be > 0 -- zero-lookahead channels would allow causal
  /// cycles with no conservative bound and are rejected with a typed
  /// error). `capacity` is the ring depth (backpressure bound).
  void connect(std::uint32_t src, std::uint32_t dst, SimTime min_latency,
               std::size_t capacity = 1024);

  [[nodiscard]] Cell& cell(std::uint32_t id);
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  /// Records per-cell (time, kind, src, seq) fire logs for equivalence
  /// tests. Off by default (memory).
  void set_record_fire_log(bool on) { record_fire_log_ = on; }

  /// Plugs a placement strategy into run() (non-owning; must outlive the
  /// run). Default is the built-in prefix-quota walk over declared
  /// weights. Placement never changes simulation results -- only which
  /// thread executes which cell -- so any strategy keeps artifacts
  /// byte-identical; run() validates the returned assignment before
  /// trusting it with worker threads.
  void set_partitioner(const Partitioner* partitioner) {
    partitioner_ = partitioner;
  }

  /// Overrides the declared per-cell weights with measured rates (e.g.
  /// a RateProfile from a calibration run) for partitioning only. Must
  /// have one entry per cell; run() throws PartitionError
  /// {kProfileMismatch} otherwise.
  void set_measured_weights(std::vector<std::uint64_t> weights) {
    measured_weights_ = std::move(weights);
  }

  /// The cell -> shard assignment of the completed run() (empty before
  /// run and after run_reference).
  [[nodiscard]] const std::vector<std::uint32_t>& partition_map() const {
    return partition_map_;
  }

  /// Measured per-cell load of a completed run -- events executed and
  /// messages delivered per cell, in cell-id order. Deterministic (both
  /// counters are part of the determinism contract), so it is safe to
  /// export and feed back as `--profile-in`.
  [[nodiscard]] RateProfile rate_profile() const;

  /// Runs every cell to `horizon` (inclusive) on `shards` worker threads
  /// (shards == 1 runs inline on the caller, spawning nothing). Cells are
  /// partitioned by weight; shards is clamped to the cell count. One-shot:
  /// a second run throws.
  ShardRunStats run(SimTime horizon, std::size_t shards);

  /// Single-threaded globally ordered reference engine: repeatedly
  /// executes the earliest action (message-before-local at equal times,
  /// lower cell id across cells) until the horizon. Same per-cell
  /// ordering rules as run(), so per-cell fire logs must match exactly.
  ShardRunStats run_reference(SimTime horizon);

  /// Balanced contiguous partition of `weights` into `shards` groups:
  /// cell i -> group out[i], groups are contiguous, nonempty, and
  /// deterministic (prefix-quota walk). Clamps shards to the cell count.
  [[nodiscard]] static std::vector<std::uint32_t> partition(
      const std::vector<std::uint64_t>& weights, std::size_t shards);

 private:
  static constexpr std::int64_t kForeverNs =
      std::numeric_limits<std::int64_t>::max() / 4;
  static std::int64_t sat_add(std::int64_t a, std::int64_t b) {
    return a >= kForeverNs - b ? kForeverNs : a + b;
  }

  /// Hands `msg` to the destination cell's ring (or staging heap in
  /// reference mode), moving rather than copying -- the rvalue
  /// SpscRing::try_push leaves the message intact on a full ring so the
  /// backpressure loop can retry it.
  void route(ShardChannel& channel, ShardMsg&& msg);
  /// Drains every inbound ring of `c` into its staging heap.
  bool drain_inbound(Cell& c);
  /// Executes staged messages and local events of `c` strictly below
  /// `bound_ns` (message-first at ties). Returns whether anything ran.
  bool advance_cell(Cell& c, std::int64_t bound_ns);
  /// One conservative round of `c`: snapshot clocks, drain, advance to
  /// LBTS, publish the null message. Returns whether progress was made.
  bool cell_round(Cell& c, std::int64_t horizon_ns);
  void worker(const std::vector<Cell*>& group, std::int64_t horizon_ns,
              std::size_t n_shards);
  void check_cell_id(std::uint32_t id) const;

  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  bool record_fire_log_ = false;
  bool ran_ = false;
  bool reference_mode_ = false;
  const Partitioner* partitioner_ = nullptr;
  std::vector<std::uint64_t> measured_weights_;
  std::vector<std::uint32_t> partition_map_;

  std::atomic<bool> done_flag_{false};
  std::atomic<std::size_t> done_shards_{0};
  std::atomic<std::uint64_t> push_spins_{0};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> fast_skips_{0};
  /// First worker exception (what()), surfaced after the join.
  std::atomic<bool> failed_{false};
  std::string failure_;
  std::mutex failure_mu_;
};

}  // namespace steelnet::sim
