#include "sim/simulator.hpp"

#include <utility>

namespace steelnet::sim {

EventHandle Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  if (delay < SimTime::zero()) {
    throw SimError("schedule_in: negative delay " + delay.to_string());
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  if (at < now_) {
    throw SimError("schedule_at: time " + at.to_string() +
                   " is in the past (now " + now_.to_string() + ")");
  }
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_) {
    const SimTime next = queue_.next_time();
    if (next > deadline) break;
    SimTime t;
    EventQueue::Callback cb;
    if (!queue_.pop_next(t, cb)) break;
    now_ = t;
    cb();
    ++executed_;
    ++n;
  }
  // Advance the clock to the deadline when idle -- but a drained queue
  // under run() (deadline = max) leaves the clock at the last event.
  if (deadline != SimTime::max() && now_ < deadline && !stop_requested_) {
    now_ = deadline;
  }
  return n;
}

std::uint64_t Simulator::run() { return run_until(SimTime::max()); }

bool Simulator::step() {
  SimTime t;
  EventQueue::Callback cb;
  if (!queue_.pop_next(t, cb)) return false;
  now_ = t;
  cb();
  ++executed_;
  return true;
}

void Simulator::advance_clock_to(SimTime at) {
  if (at < now_) {
    throw SimError("advance_clock_to: time " + at.to_string() +
                   " is in the past (now " + now_.to_string() + ")");
  }
  const SimTime next = queue_.next_time();
  if (next < at) {
    throw SimError("advance_clock_to: time " + at.to_string() +
                   " would jump over a pending event at " + next.to_string());
  }
  now_ = at;
}

void Simulator::reset() {
  queue_.clear();
  now_ = SimTime::zero();
  executed_ = 0;
  stop_requested_ = false;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period,
                           std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period <= SimTime::zero()) {
    throw SimError("PeriodicTask: period must be positive");
  }
  arm(start);
}

void PeriodicTask::arm(SimTime at) {
  next_ = sim_.schedule_at(at, [this] {
    if (!running_) return;
    ++fired_;
    // Re-arm before running the body so the body may call stop().
    arm(sim_.now() + period_);
    fn_();
  });
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

}  // namespace steelnet::sim
