// steelnet::textmine -- a synthetic proceedings corpus.
//
// We cannot redistribute the ACM full texts the paper scanned (SIGCOMM
// '22/'23, HotNets '22/'23), so the Fig. 1 reproduction runs the real
// mining pipeline over a synthetic corpus whose term-occurrence rates
// are calibrated to the published counts (see DESIGN.md, substitution
// table). The corpus generator is deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace steelnet::textmine {

struct CorpusSpec {
  /// Four venues' full papers: SIGCOMM 22/23 + HotNets 22/23 ~ 250 docs.
  std::size_t documents = 250;
  /// Background words per document (full-paper scale).
  std::size_t words_per_document = 6000;
  std::uint64_t seed = 20251117;  // HotNets'25 opening day
};

/// Target injection counts per Fig. 1 group, in fig1_term_groups() order.
/// Defaults are the counts the paper reports.
[[nodiscard]] std::vector<std::uint64_t> fig1_published_counts();

/// Generates the corpus: networking-paper background prose with term
/// occurrences injected to hit `target_counts` (spread pseudo-randomly
/// over documents and permutation spellings).
[[nodiscard]] std::vector<std::string> generate_corpus(
    const CorpusSpec& spec,
    const std::vector<std::uint64_t>& target_counts =
        fig1_published_counts());

}  // namespace steelnet::textmine
