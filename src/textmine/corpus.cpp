#include "textmine/corpus.hpp"

#include <array>
#include <stdexcept>

#include "textmine/terms.hpp"

namespace steelnet::textmine {

std::vector<std::uint64_t> fig1_published_counts() {
  // Fig. 1, top to bottom: vPLC, Industry 4.0/5.0, IIoT, PLC, Industrial
  // Informatic, Cyber Physical System, IT/OT, Industrial Network,
  // PROFINET/EtherCAT/TSN, MQTT/OPC UA/VXLAN, Datacenter, Internet,
  // TCP/UDP/IPv4/IPv6.
  return {0, 1, 1, 2, 4, 6, 7, 14, 17, 21, 1943, 2289, 3005};
}

namespace {

// Background vocabulary shaped like systems/networking prose. None of
// these words collide with a Fig. 1 pattern (tests assert this).
constexpr std::array<const char*, 64> kVocab = {
    "the",        "a",           "we",         "our",      "this",
    "paper",      "propose",     "design",     "evaluate", "measure",
    "throughput", "latency",     "bandwidth",  "packet",   "flow",
    "congestion", "control",     "protocol",   "routing",  "switch",
    "server",     "host",        "kernel",     "stack",    "transport",
    "topology",   "scheduling",  "queue",      "buffer",   "loss",
    "fairness",   "scalable",    "distributed","system",   "network",
    "traffic",    "workload",    "cluster",    "tenant",   "virtual",
    "machine",    "container",   "service",    "cloud",    "edge",
    "link",       "path",        "failure",    "recovery", "telemetry",
    "measurement","deployment",  "hardware",   "software", "interface",
    "abstraction","performance", "overhead",   "baseline", "benchmark",
    "experiment", "evaluation",  "results",    "analysis"};

}  // namespace

std::vector<std::string> generate_corpus(
    const CorpusSpec& spec, const std::vector<std::uint64_t>& target_counts) {
  const auto groups = fig1_term_groups();
  if (target_counts.size() != groups.size()) {
    throw std::invalid_argument("generate_corpus: count/group mismatch");
  }

  sim::Rng rng{spec.seed};

  // Background prose.
  std::vector<std::string> docs;
  docs.reserve(spec.documents);
  for (std::size_t d = 0; d < spec.documents; ++d) {
    std::string doc;
    doc.reserve(spec.words_per_document * 8);
    for (std::size_t w = 0; w < spec.words_per_document; ++w) {
      doc += kVocab[std::size_t(
          rng.uniform_int(0, std::int64_t(kVocab.size()) - 1))];
      doc += (w + 1) % 18 == 0 ? ". " : " ";
    }
    docs.push_back(std::move(doc));
  }

  // Inject each group's occurrences: random document, random permutation
  // spelling, appended as sentences (word boundaries guaranteed by the
  // surrounding spaces).
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& patterns = groups[g].patterns;
    for (std::uint64_t k = 0; k < target_counts[g]; ++k) {
      auto& doc = docs[std::size_t(
          rng.uniform_int(0, std::int64_t(docs.size()) - 1))];
      const auto& spelling = patterns[std::size_t(
          rng.uniform_int(0, std::int64_t(patterns.size()) - 1))];
      doc += "we discuss ";
      doc += spelling;
      doc += " here. ";
    }
  }
  return docs;
}

}  // namespace steelnet::textmine
