// steelnet::textmine -- the Fig. 1 terminology groups with permutations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "textmine/aho_corasick.hpp"

namespace steelnet::textmine {

/// One bar of Fig. 1: a display name plus all spelling permutations that
/// count toward it.
struct TermGroup {
  std::string name;
  std::vector<std::string> patterns;
};

/// Expands compound terms: permutations of `parts` joined by each
/// separator -- e.g. ({"IT","OT"}, {"/","-"}) -> it/ot, ot/it, it-ot,
/// ot-it. Works for 2 or 3 parts.
[[nodiscard]] std::vector<std::string> expand_permutations(
    const std::vector<std::string>& parts,
    const std::vector<std::string>& separators);

/// The 13 groups of Fig. 1, in the paper's order (top-to-bottom:
/// vPLC ... TCP/UDP/IPv4/IPv6).
[[nodiscard]] std::vector<TermGroup> fig1_term_groups();

struct TermCount {
  std::string name;
  std::uint64_t count = 0;
};

/// Counts word-boundary occurrences of every group over `documents`.
/// Results are in group order (same as the input).
[[nodiscard]] std::vector<TermCount> count_terms(
    const std::vector<TermGroup>& groups,
    const std::vector<std::string>& documents);

}  // namespace steelnet::textmine
