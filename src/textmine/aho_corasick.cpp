#include "textmine/aho_corasick.hpp"

#include <cctype>
#include <deque>
#include <stdexcept>

namespace steelnet::textmine {

namespace {
unsigned char lower(unsigned char c) {
  return static_cast<unsigned char>(std::tolower(c));
}
bool is_word_char(unsigned char c) { return std::isalnum(c) != 0; }
}  // namespace

std::int32_t AhoCorasick::child(std::int32_t node, unsigned char c) const {
  for (const auto& [ch, nxt] : nodes_[std::size_t(node)].next) {
    if (ch == c) return nxt;
  }
  return -1;
}

std::int32_t AhoCorasick::force_child(std::int32_t node, unsigned char c) {
  const auto existing = child(node, c);
  if (existing >= 0) return existing;
  nodes_.push_back(Node{});
  const auto id = static_cast<std::int32_t>(nodes_.size() - 1);
  nodes_[std::size_t(node)].next.emplace_back(c, id);
  return id;
}

void AhoCorasick::add_pattern(std::string_view pattern, std::uint32_t id) {
  if (built_) throw std::logic_error("AhoCorasick: add after build");
  if (pattern.empty()) {
    throw std::invalid_argument("AhoCorasick: empty pattern");
  }
  std::int32_t node = 0;
  for (char raw : pattern) {
    node = force_child(node, lower(static_cast<unsigned char>(raw)));
  }
  nodes_[std::size_t(node)].outputs.push_back(
      {id, static_cast<std::uint32_t>(pattern.size())});
  ++patterns_;
}

void AhoCorasick::build() {
  if (built_) return;
  built_ = true;
  std::deque<std::int32_t> queue;
  for (auto& [c, nxt] : nodes_[0].next) {
    (void)c;
    nodes_[std::size_t(nxt)].fail = 0;
    queue.push_back(nxt);
  }
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    for (const auto& [c, v] : nodes_[std::size_t(u)].next) {
      // Follow fail links to find the longest proper suffix state.
      std::int32_t f = nodes_[std::size_t(u)].fail;
      while (f != 0 && child(f, c) < 0) f = nodes_[std::size_t(f)].fail;
      const auto fc = child(f, c);
      nodes_[std::size_t(v)].fail = (fc >= 0 && fc != v) ? fc : 0;
      // Merge suffix outputs so one visit reports all patterns ending
      // here.
      const auto& fail_out =
          nodes_[std::size_t(nodes_[std::size_t(v)].fail)].outputs;
      auto& out = nodes_[std::size_t(v)].outputs;
      out.insert(out.end(), fail_out.begin(), fail_out.end());
      queue.push_back(v);
    }
  }
}

std::vector<Match> AhoCorasick::find_all(std::string_view text) const {
  if (!built_) throw std::logic_error("AhoCorasick: find before build");
  std::vector<Match> matches;
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const unsigned char c = lower(static_cast<unsigned char>(text[i]));
    while (node != 0 && child(node, c) < 0) {
      node = nodes_[std::size_t(node)].fail;
    }
    const auto nxt = child(node, c);
    node = nxt >= 0 ? nxt : 0;
    for (const auto& out : nodes_[std::size_t(node)].outputs) {
      matches.push_back(Match{i + 1 - out.length, out.length,
                              out.pattern_id});
    }
  }
  return matches;
}

std::vector<Match> AhoCorasick::find_words(std::string_view text) const {
  std::vector<Match> all = find_all(text);
  std::vector<Match> words;
  for (const Match& m : all) {
    const bool left_ok =
        m.position == 0 ||
        !is_word_char(static_cast<unsigned char>(text[m.position - 1]));
    const std::size_t end = m.position + m.length;
    const bool right_ok =
        end >= text.size() ||
        !is_word_char(static_cast<unsigned char>(text[end]));
    if (left_ok && right_ok) words.push_back(m);
  }
  return words;
}

}  // namespace steelnet::textmine
