// steelnet::textmine -- Aho-Corasick multi-pattern string matching.
//
// Fig. 1 of the paper counts occurrences of ~40 terminology patterns
// (with permutations) across four proceedings' worth of full text; a
// single automaton pass per document is the right tool.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace steelnet::textmine {

struct Match {
  std::size_t position;  ///< byte offset of the first matched character
  std::size_t length;
  std::uint32_t pattern_id;
};

/// Case-insensitive Aho-Corasick automaton over bytes.
///
/// Usage: add_pattern() for each pattern, build(), then find_all() any
/// number of times. Adding after build() throws.
class AhoCorasick {
 public:
  AhoCorasick() = default;

  /// Registers a pattern; returns nothing (the caller supplies the id).
  /// Empty patterns are rejected.
  void add_pattern(std::string_view pattern, std::uint32_t id);

  /// Constructs goto/fail/output links. Idempotent.
  void build();

  /// All matches (including overlapping ones), in position order.
  [[nodiscard]] std::vector<Match> find_all(std::string_view text) const;

  /// Matches that start and end on word boundaries (the neighbouring
  /// characters, if any, are not alphanumeric). "plc" does not match
  /// inside "vplc".
  [[nodiscard]] std::vector<Match> find_words(std::string_view text) const;

  [[nodiscard]] std::size_t pattern_count() const { return patterns_; }
  [[nodiscard]] bool built() const { return built_; }

 private:
  struct NodeOut {
    std::uint32_t pattern_id;
    std::uint32_t length;
  };
  struct Node {
    std::vector<std::pair<unsigned char, std::int32_t>> next;
    std::int32_t fail = 0;
    std::vector<NodeOut> outputs;
  };

  [[nodiscard]] std::int32_t child(std::int32_t node, unsigned char c) const;
  std::int32_t force_child(std::int32_t node, unsigned char c);

  std::vector<Node> nodes_{1};
  std::size_t patterns_ = 0;
  bool built_ = false;
};

}  // namespace steelnet::textmine
