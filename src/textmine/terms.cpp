#include "textmine/terms.hpp"

#include <algorithm>

namespace steelnet::textmine {

std::vector<std::string> expand_permutations(
    const std::vector<std::string>& parts,
    const std::vector<std::string>& separators) {
  std::vector<std::string> order(parts);
  std::sort(order.begin(), order.end());
  std::vector<std::string> out;
  do {
    for (const auto& sep : separators) {
      std::string s;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i != 0) s += sep;
        s += order[i];
      }
      out.push_back(s);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

std::vector<TermGroup> fig1_term_groups() {
  std::vector<TermGroup> groups;

  groups.push_back({"vPLC",
                    {"vplc", "vplcs", "virtual plc", "virtual plcs",
                     "virtualized plc",
                     "virtual programmable logic controller"}});

  groups.push_back({"Industry 4.0/5.0",
                    {"industry 4.0", "industry 5.0", "industrie 4.0",
                     "industry 4", "industry 5",
                     "fourth industrial revolution"}});

  groups.push_back({"IIoT",
                    {"iiot", "industrial iot",
                     "industrial internet of things"}});

  groups.push_back({"PLC",
                    {"plc", "plcs", "programmable logic controller",
                     "programmable logic controllers"}});

  groups.push_back({"Industrial Informatic",
                    {"industrial informatic", "industrial informatics"}});

  groups.push_back({"Cyber Physical System",
                    {"cyber physical system", "cyber-physical system",
                     "cyber physical systems", "cyber-physical systems"}});

  TermGroup itot{"IT/OT", expand_permutations({"it", "ot"}, {"/", "-"})};
  itot.patterns.push_back("it/ot convergence");
  itot.patterns.push_back("ot/it convergence");
  groups.push_back(std::move(itot));

  groups.push_back({"Industrial Network",
                    {"industrial network", "industrial networks",
                     "industrial control network",
                     "industrial control networks"}});

  groups.push_back({"PROFINET/EtherCAT/TSN",
                    {"profinet", "ethercat", "tsn",
                     "time sensitive networking",
                     "time-sensitive networking"}});

  groups.push_back({"MQTT/OPC UA/VXLAN",
                    {"mqtt", "opc ua", "opc-ua", "opcua", "vxlan"}});

  groups.push_back({"Datacenter",
                    {"datacenter", "datacenters", "data center",
                     "data centers", "data-center", "data-centers"}});

  groups.push_back({"Internet", {"internet"}});

  groups.push_back({"TCP/UDP/IPv4/IPv6",
                    {"tcp", "udp", "ipv4", "ipv6"}});

  return groups;
}

std::vector<TermCount> count_terms(const std::vector<TermGroup>& groups,
                                   const std::vector<std::string>& documents) {
  // One automaton over all patterns; pattern_id encodes the group.
  AhoCorasick ac;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const auto& p : groups[g].patterns) {
      ac.add_pattern(p, static_cast<std::uint32_t>(g));
    }
  }
  ac.build();

  std::vector<TermCount> counts;
  counts.reserve(groups.size());
  for (const auto& g : groups) counts.push_back({g.name, 0});

  for (const auto& doc : documents) {
    const auto matches = ac.find_words(doc);
    // Longest-match de-duplication: a match strictly contained in a
    // longer one is shadowed, within AND across groups -- "data centers"
    // counts once (not also as "data center"), and the "internet" inside
    // "industrial internet of things" belongs to IIoT, not Internet.
    for (std::size_t i = 0; i < matches.size(); ++i) {
      const Match& m = matches[i];
      bool shadowed = false;
      for (const Match& other : matches) {
        if (&other == &m) continue;
        // `other` shadows `m` if it covers it strictly.
        if (other.position <= m.position &&
            other.position + other.length >= m.position + m.length &&
            other.length > m.length) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed) ++counts[m.pattern_id].count;
    }
  }
  return counts;
}

}  // namespace steelnet::textmine
