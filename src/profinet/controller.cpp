#include "profinet/controller.hpp"

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::profinet {

const char* to_string(ControllerState s) {
  switch (s) {
    case ControllerState::kIdle: return "idle";
    case ControllerState::kConnecting: return "connecting";
    case ControllerState::kParameterizing: return "parameterizing";
    case ControllerState::kRunning: return "running";
    case ControllerState::kDeviceLost: return "device_lost";
    case ControllerState::kStopped: return "stopped";
  }
  return "?";
}

CyclicController::CyclicController(net::HostNode& host, ControllerConfig cfg)
    : host_(host), cfg_(std::move(cfg)) {
  host_.set_receiver([this](net::Frame f, sim::SimTime at) {
    on_frame(f, at);
    // Consumed: the payload buffer goes back to the pool.
    host_.network().frame_pool().recycle(std::move(f));
  });
}

void CyclicController::send_pdu(const Pdu& pdu) {
  net::Frame f = host_.network().frame_pool().make(0);
  f.dst = cfg_.device_mac;
  f.src = host_.mac();
  f.ethertype = net::EtherType::kProfinetRt;
  f.pcp = 6;
  f.flow_id = cfg_.ar_id;
  f.seq = tx_cycle_counter_;
  encode_into(pdu, f.payload);
  host_.send(std::move(f));
}

void CyclicController::connect() {
  // Reconnect is allowed from idle, after device loss, and after stop()
  // (a restarted vPLC pod re-establishing its AR).
  if (state_ == ControllerState::kConnecting ||
      state_ == ControllerState::kParameterizing ||
      state_ == ControllerState::kRunning) {
    return;
  }
  cycle_task_.reset();
  state_ = ControllerState::kConnecting;
  connect_attempts_ = 0;
  send_connect();
}

void CyclicController::send_connect() {
  if (state_ != ControllerState::kConnecting) return;
  if (connect_attempts_++ >= cfg_.max_connect_retries) {
    state_ = ControllerState::kIdle;
    if (connected_handler_) connected_handler_(false);
    return;
  }
  ++counters_.connects_sent;
  ConnectReq req;
  req.ar_id = cfg_.ar_id;
  req.cycle_time_us =
      static_cast<std::uint32_t>(cfg_.cycle.nanos() / 1000);
  req.watchdog_factor = cfg_.watchdog_factor;
  req.input_bytes = cfg_.input_bytes;
  req.output_bytes = cfg_.output_bytes;
  send_pdu(req);
  connect_timer_.cancel();
  connect_timer_ = host_.network().sim().schedule_in(
      cfg_.connect_timeout, [this] { send_connect(); });
}

void CyclicController::adopt_running(std::uint16_t resume_cycle_counter) {
  connect_timer_.cancel();
  state_ = ControllerState::kRunning;
  tx_cycle_counter_ = resume_cycle_counter;
  last_input_rx_ = host_.network().sim().now();
  cycle_task_ = std::make_unique<sim::PeriodicTask>(
      host_.network().sim(), host_.network().sim().now(), cfg_.cycle,
      [this] { controller_cycle(); });
}

void CyclicController::stop() {
  state_ = ControllerState::kStopped;
  cycle_task_.reset();
  connect_timer_.cancel();
}

void CyclicController::controller_cycle() {
  if (state_ != ControllerState::kRunning &&
      state_ != ControllerState::kDeviceLost) {
    return;
  }
  auto& sim = host_.network().sim();
  if (state_ == ControllerState::kRunning &&
      sim.now() - last_input_rx_ >
          cfg_.cycle * static_cast<std::int64_t>(cfg_.watchdog_factor)) {
    state_ = ControllerState::kDeviceLost;
    ++counters_.device_watchdog_trips;
    if (device_lost_handler_) device_lost_handler_();
  }
  CyclicData out;
  out.ar_id = cfg_.ar_id;
  out.cycle_counter = tx_cycle_counter_++;
  out.data_status = 0b101;
  out.data = output_provider_
                 ? output_provider_(cfg_.output_bytes)
                 : std::vector<std::uint8_t>(cfg_.output_bytes, 0);
  ++counters_.cyclic_tx;
  send_pdu(out);
}

void CyclicController::on_frame(const net::Frame& frame, sim::SimTime) {
  if (frame.ethertype != net::EtherType::kProfinetRt) return;
  if (state_ == ControllerState::kStopped) return;
  const auto pdu = decode(frame.payload);
  if (!pdu.has_value()) return;

  if (const auto* resp = std::get_if<ConnectResp>(&*pdu)) {
    if (state_ != ControllerState::kConnecting ||
        resp->ar_id != cfg_.ar_id) {
      return;
    }
    connect_timer_.cancel();
    if (resp->status != 0) {
      state_ = ControllerState::kIdle;
      if (connected_handler_) connected_handler_(false);
      return;
    }
    state_ = ControllerState::kParameterizing;
    for (auto rec : cfg_.records) {
      rec.ar_id = cfg_.ar_id;
      send_pdu(rec);
    }
    ParamDone done;
    done.ar_id = cfg_.ar_id;
    send_pdu(done);
    // Cyclic exchange starts one cycle later (device also starts then).
    state_ = ControllerState::kRunning;
    last_input_rx_ = host_.network().sim().now();
    tx_cycle_counter_ = 0;
    cycle_task_ = std::make_unique<sim::PeriodicTask>(
        host_.network().sim(), host_.network().sim().now() + cfg_.cycle,
        cfg_.cycle, [this] { controller_cycle(); });
    if (connected_handler_) connected_handler_(true);
    return;
  }
  if (const auto* data = std::get_if<CyclicData>(&*pdu)) {
    if (data->ar_id != cfg_.ar_id) return;
    ++counters_.cyclic_rx;
    last_input_rx_ = host_.network().sim().now();
    if (state_ == ControllerState::kDeviceLost) {
      state_ = ControllerState::kRunning;
    }
    last_inputs_ = data->data;
    if (input_handler_) input_handler_(data->data);
    return;
  }
  if (std::get_if<Alarm>(&*pdu) != nullptr) {
    ++counters_.alarms_rx;
    return;
  }
}

void CyclicController::register_metrics(obs::ObsHub& hub) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const std::string& node = host_.name();
  reg.bind_counter({node, "profinet", "cyclic_tx"}, &counters_.cyclic_tx);
  reg.bind_counter({node, "profinet", "cyclic_rx"}, &counters_.cyclic_rx);
  reg.bind_counter({node, "profinet", "connects_sent"},
                   &counters_.connects_sent);
  reg.bind_counter({node, "profinet", "device_watchdog_trips"},
                   &counters_.device_watchdog_trips);
  reg.bind_counter({node, "profinet", "alarms_rx"}, &counters_.alarms_rx);
}

}  // namespace steelnet::profinet
