#include "profinet/wire.hpp"

namespace steelnet::profinet {

std::string to_string(PduType t) {
  switch (t) {
    case PduType::kConnectReq: return "ConnectReq";
    case PduType::kConnectResp: return "ConnectResp";
    case PduType::kParamRecord: return "ParamRecord";
    case PduType::kParamDone: return "ParamDone";
    case PduType::kCyclicData: return "CyclicData";
    case PduType::kAlarm: return "Alarm";
    case PduType::kRelease: return "Release";
  }
  return "?";
}

namespace {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return false;
    v = in_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > in_.size()) return false;
    v = static_cast<std::uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo, hi;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) |
        (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& b, std::size_t n) {
    if (pos_ + n > in_.size()) return false;
    b.assign(in_.begin() + std::ptrdiff_t(pos_),
             in_.begin() + std::ptrdiff_t(pos_ + n));
    pos_ += n;
    return true;
  }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

struct Encoder {
  Writer w;

  void operator()(const ConnectReq& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kConnectReq));
    w.u16(p.ar_id);
    w.u32(p.cycle_time_us);
    w.u16(p.watchdog_factor);
    w.u16(p.input_bytes);
    w.u16(p.output_bytes);
  }
  void operator()(const ConnectResp& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kConnectResp));
    w.u16(p.ar_id);
    w.u8(p.status);
    w.u32(p.device_id);
  }
  void operator()(const ParamRecord& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kParamRecord));
    w.u16(p.ar_id);
    w.u16(p.record_index);
    w.u16(static_cast<std::uint16_t>(p.data.size()));
    w.bytes(p.data);
  }
  void operator()(const ParamDone& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kParamDone));
    w.u16(p.ar_id);
  }
  void operator()(const CyclicData& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kCyclicData));
    w.u16(p.ar_id);
    w.u16(p.cycle_counter);
    w.u8(p.data_status);
    w.u16(static_cast<std::uint16_t>(p.data.size()));
    w.bytes(p.data);
  }
  void operator()(const Alarm& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kAlarm));
    w.u16(p.ar_id);
    w.u8(p.alarm_type);
  }
  void operator()(const Release& p) {
    w.u8(static_cast<std::uint8_t>(PduType::kRelease));
    w.u16(p.ar_id);
  }
};

}  // namespace

void encode_into(const Pdu& pdu, std::vector<std::uint8_t>& out) {
  out.clear();
  std::visit(Encoder{Writer{out}}, pdu);
}

std::vector<std::uint8_t> encode(const Pdu& pdu) {
  std::vector<std::uint8_t> out;
  encode_into(pdu, out);
  return out;
}

std::optional<Pdu> decode(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  std::uint8_t type_raw;
  if (!r.u8(type_raw)) return std::nullopt;
  switch (static_cast<PduType>(type_raw)) {
    case PduType::kConnectReq: {
      ConnectReq p;
      if (!r.u16(p.ar_id) || !r.u32(p.cycle_time_us) ||
          !r.u16(p.watchdog_factor) || !r.u16(p.input_bytes) ||
          !r.u16(p.output_bytes)) {
        return std::nullopt;
      }
      return p;
    }
    case PduType::kConnectResp: {
      ConnectResp p;
      if (!r.u16(p.ar_id) || !r.u8(p.status) || !r.u32(p.device_id)) {
        return std::nullopt;
      }
      return p;
    }
    case PduType::kParamRecord: {
      ParamRecord p;
      std::uint16_t len;
      if (!r.u16(p.ar_id) || !r.u16(p.record_index) || !r.u16(len) ||
          !r.bytes(p.data, len)) {
        return std::nullopt;
      }
      return p;
    }
    case PduType::kParamDone: {
      ParamDone p;
      if (!r.u16(p.ar_id)) return std::nullopt;
      return p;
    }
    case PduType::kCyclicData: {
      CyclicData p;
      std::uint16_t len;
      if (!r.u16(p.ar_id) || !r.u16(p.cycle_counter) ||
          !r.u8(p.data_status) || !r.u16(len) || !r.bytes(p.data, len)) {
        return std::nullopt;
      }
      return p;
    }
    case PduType::kAlarm: {
      Alarm p;
      if (!r.u16(p.ar_id) || !r.u8(p.alarm_type)) return std::nullopt;
      return p;
    }
    case PduType::kRelease: {
      Release p;
      if (!r.u16(p.ar_id)) return std::nullopt;
      return p;
    }
  }
  return std::nullopt;
}

std::optional<PduType> peek_type(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return std::nullopt;
  const auto t = payload[offsets::kPduType];
  if (t < 1 || t > 7) return std::nullopt;
  return static_cast<PduType>(t);
}

std::optional<std::uint16_t> peek_ar(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() < offsets::kArId + 2) return std::nullopt;
  return static_cast<std::uint16_t>(payload[offsets::kArId] |
                                    (payload[offsets::kArId + 1] << 8));
}

}  // namespace steelnet::profinet
