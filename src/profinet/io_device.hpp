// steelnet::profinet -- the I/O device endpoint (field side).
//
// An I/O device collects sensor readings and drives actuators (§1.1). It
// accepts one application relationship, stores parameterization records,
// exchanges cyclic data, and -- crucially for the paper's availability
// story -- halts its outputs for safety when the controller's cyclic
// frames stop arriving for `watchdog_factor` cycles (PROFINET watchdog
// expiration, §2.1/§4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/host_node.hpp"
#include "profinet/wire.hpp"
#include "sim/simulator.hpp"

namespace steelnet::profinet {

enum class DeviceState : std::uint8_t {
  kIdle,
  kConnected,       ///< AR open, awaiting parameterization
  kDataExchange,    ///< cyclic I/O running
  kWatchdogExpired, ///< outputs halted (safe state)
};

[[nodiscard]] const char* to_string(DeviceState s);

struct IoDeviceConfig {
  std::uint32_t device_id = 1;
  /// Resume data exchange automatically if cyclic frames return after a
  /// watchdog trip. Real devices often require re-parameterization; the
  /// flag exists so experiments can show both behaviours.
  bool auto_resume = true;
};

struct IoDeviceCounters {
  std::uint64_t cyclic_rx = 0;
  std::uint64_t cyclic_tx = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t alarms_sent = 0;
  std::uint64_t rejected_connects = 0;
  std::uint64_t malformed = 0;
};

class IoDevice {
 public:
  /// Binds to `host` (takes over its receiver callback).
  IoDevice(net::HostNode& host, IoDeviceConfig cfg = {});

  /// Sensor image: called once per device cycle to fill the cyclic frame
  /// toward the controller. Defaults to zero-filled data.
  void set_input_provider(
      std::function<std::vector<std::uint8_t>(std::size_t bytes)> fn) {
    input_provider_ = std::move(fn);
  }

  /// Actuator image: called whenever fresh output data arrives. The
  /// second argument is false when the device enters the safe state
  /// (outputs must be treated as zero / de-energized).
  void set_output_handler(
      std::function<void(const std::vector<std::uint8_t>&, bool run)> fn) {
    output_handler_ = std::move(fn);
  }

  [[nodiscard]] DeviceState state() const { return state_; }
  [[nodiscard]] const IoDeviceCounters& counters() const { return counters_; }
  [[nodiscard]] std::optional<std::uint16_t> active_ar() const {
    return state_ == DeviceState::kIdle ? std::nullopt
                                        : std::optional(ar_id_);
  }
  [[nodiscard]] const std::map<std::uint16_t, std::vector<std::uint8_t>>&
  param_records() const {
    return records_;
  }
  [[nodiscard]] sim::SimTime cycle_time() const { return cycle_; }
  [[nodiscard]] net::HostNode& host() { return host_; }

  /// Binds device counters under `<host name>/profinet/...` (including
  /// the watchdog-expiration count central to the availability story).
  void register_metrics(obs::ObsHub& hub) const;

 private:
  void on_frame(const net::Frame& frame, sim::SimTime at);
  void handle(const ConnectReq& p, net::MacAddress from);
  void handle(const ParamRecord& p);
  void handle(const ParamDone& p);
  void handle(const CyclicData& p, net::MacAddress from);
  void handle(const Release& p);
  void start_data_exchange();
  void device_cycle();
  void send_pdu(const Pdu& pdu);

  net::HostNode& host_;
  IoDeviceConfig cfg_;
  DeviceState state_ = DeviceState::kIdle;

  std::uint16_t ar_id_ = 0;
  net::MacAddress controller_mac_;
  sim::SimTime cycle_ = sim::milliseconds(2);
  std::uint16_t watchdog_factor_ = 3;
  std::uint16_t input_bytes_ = 8;
  std::map<std::uint16_t, std::vector<std::uint8_t>> records_;

  std::unique_ptr<sim::PeriodicTask> cycle_task_;
  sim::SimTime last_output_rx_ = sim::SimTime::zero();
  std::uint16_t tx_cycle_counter_ = 0;

  std::function<std::vector<std::uint8_t>(std::size_t)> input_provider_;
  std::function<void(const std::vector<std::uint8_t>&, bool)> output_handler_;
  IoDeviceCounters counters_;
};

}  // namespace steelnet::profinet
