// steelnet::profinet -- the wire format of the cyclic real-time protocol.
//
// A PROFINET-RT-shaped protocol: connection establishment (an Application
// Relationship), parameterization records, then cyclic data exchange with
// cycle counters and a watchdog ("how long each device can continue
// working without receiving new data", §4). All PDUs are byte-serialized
// into the frame payload and parsed back out, so in-network applications
// (InstaPLC) can read and rewrite them exactly as a P4 pipeline would.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/frame.hpp"

namespace steelnet::profinet {

enum class PduType : std::uint8_t {
  kConnectReq = 1,
  kConnectResp = 2,
  kParamRecord = 3,
  kParamDone = 4,
  kCyclicData = 5,
  kAlarm = 6,
  kRelease = 7,
};

[[nodiscard]] std::string to_string(PduType t);

/// Controller -> device: open an application relationship.
struct ConnectReq {
  std::uint16_t ar_id = 0;
  std::uint32_t cycle_time_us = 2000;
  /// Watchdog expires after this many missed cycles (PROFINET's
  /// watchdog factor; devices halt for safety when it trips, §2.1).
  std::uint16_t watchdog_factor = 3;
  std::uint16_t input_bytes = 8;   ///< device -> controller
  std::uint16_t output_bytes = 8;  ///< controller -> device
};

/// Device -> controller: accept/reject.
struct ConnectResp {
  std::uint16_t ar_id = 0;
  std::uint8_t status = 0;  ///< 0 = ok
  std::uint32_t device_id = 0;
};

/// Controller -> device: one parameterization record.
struct ParamRecord {
  std::uint16_t ar_id = 0;
  std::uint16_t record_index = 0;
  std::vector<std::uint8_t> data;
};

/// Controller -> device: parameterization complete; start cyclic I/O.
struct ParamDone {
  std::uint16_t ar_id = 0;
};

/// Both directions: one cycle's process data.
struct CyclicData {
  std::uint16_t ar_id = 0;
  std::uint16_t cycle_counter = 0;
  /// bit0 = RUN, bit2 = data valid (mirrors PROFINET's DataStatus).
  std::uint8_t data_status = 0b0000'0101;
  std::vector<std::uint8_t> data;

  [[nodiscard]] bool running() const { return data_status & 0x1; }
  [[nodiscard]] bool valid() const { return data_status & 0x4; }
};

/// Device -> controller: diagnosis.
struct Alarm {
  std::uint16_t ar_id = 0;
  std::uint8_t alarm_type = 0;
  static constexpr std::uint8_t kWatchdogExpired = 1;
  static constexpr std::uint8_t kProcessAlarm = 2;
};

/// Either side: tear down the AR.
struct Release {
  std::uint16_t ar_id = 0;
};

using Pdu = std::variant<ConnectReq, ConnectResp, ParamRecord, ParamDone,
                         CyclicData, Alarm, Release>;

/// Byte offsets used by in-network match/rewrite rules.
namespace offsets {
constexpr std::size_t kPduType = 0;
constexpr std::size_t kArId = 1;  ///< u16, little-endian, all PDUs
constexpr std::size_t kCycleCounter = 3;
constexpr std::size_t kDataStatus = 5;
}  // namespace offsets

/// Serializes `pdu` into a frame payload (the frame's addressing is the
/// caller's business).
[[nodiscard]] std::vector<std::uint8_t> encode(const Pdu& pdu);

/// Serializes `pdu` into `out` (cleared first), reusing its capacity --
/// the allocation-free TX path when `out` is a pooled payload buffer.
void encode_into(const Pdu& pdu, std::vector<std::uint8_t>& out);

/// Parses a payload. Returns nullopt on malformed/truncated input.
[[nodiscard]] std::optional<Pdu> decode(
    const std::vector<std::uint8_t>& payload);

/// Reads just the PDU type / AR id without a full parse (fast path used
/// by the data plane).
[[nodiscard]] std::optional<PduType> peek_type(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<std::uint16_t> peek_ar(
    const std::vector<std::uint8_t>& payload);

}  // namespace steelnet::profinet
