// steelnet::profinet -- the controller-side protocol driver (PLC side).
//
// Establishes the communication relationship ("the vPLC configures what
// data is exchanged with the I/O device and how often ... and how long
// each device can continue working without receiving new data", §4),
// then runs cyclic output transmission and input reception with its own
// watchdog on the device.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host_node.hpp"
#include "profinet/wire.hpp"
#include "sim/simulator.hpp"

namespace steelnet::profinet {

enum class ControllerState : std::uint8_t {
  kIdle,
  kConnecting,
  kParameterizing,
  kRunning,
  kDeviceLost,  ///< device inputs stopped (controller-side watchdog)
  kStopped,     ///< stop() called -- the Fig. 5 failure injection
};

[[nodiscard]] const char* to_string(ControllerState s);

struct ControllerConfig {
  std::uint16_t ar_id = 1;
  net::MacAddress device_mac;
  sim::SimTime cycle = sim::milliseconds(2);
  std::uint16_t watchdog_factor = 3;
  std::uint16_t input_bytes = 8;   ///< device -> controller
  std::uint16_t output_bytes = 8;  ///< controller -> device
  /// Parameterization records written during connection establishment.
  std::vector<ParamRecord> records;
  /// ConnectReq retry interval / budget.
  sim::SimTime connect_timeout = sim::milliseconds(10);
  std::size_t max_connect_retries = 10;
};

struct ControllerCounters {
  std::uint64_t cyclic_tx = 0;
  std::uint64_t cyclic_rx = 0;
  std::uint64_t connects_sent = 0;
  std::uint64_t device_watchdog_trips = 0;
  std::uint64_t alarms_rx = 0;
};

class CyclicController {
 public:
  CyclicController(net::HostNode& host, ControllerConfig cfg);

  /// Starts connection establishment.
  void connect();
  /// Halts all transmission immediately (crash/failure injection).
  void stop();
  /// Jumps straight to kRunning without connection establishment --
  /// used by a redundancy standby whose AR state was replicated over a
  /// dedicated sync link. `resume_cycle_counter` continues the primary's
  /// numbering so the device sees one uninterrupted stream.
  void adopt_running(std::uint16_t resume_cycle_counter);

  /// Output image toward the device, sampled every cycle.
  void set_output_provider(
      std::function<std::vector<std::uint8_t>(std::size_t bytes)> fn) {
    output_provider_ = std::move(fn);
  }
  /// Fresh input data from the device.
  void set_input_handler(
      std::function<void(const std::vector<std::uint8_t>&)> fn) {
    input_handler_ = std::move(fn);
  }
  /// Invoked when the controller-side watchdog declares the device lost.
  void set_device_lost_handler(std::function<void()> fn) {
    device_lost_handler_ = std::move(fn);
  }
  /// Invoked on ConnectResp: argument is true when the device accepted.
  void set_connected_handler(std::function<void(bool accepted)> fn) {
    connected_handler_ = std::move(fn);
  }

  [[nodiscard]] ControllerState state() const { return state_; }
  [[nodiscard]] const ControllerCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<std::uint8_t>& last_inputs() const {
    return last_inputs_;
  }
  [[nodiscard]] net::HostNode& host() { return host_; }

  /// Binds controller counters under `<host name>/profinet/...`.
  void register_metrics(obs::ObsHub& hub) const;

 private:
  void on_frame(const net::Frame& frame, sim::SimTime at);
  void send_connect();
  void controller_cycle();
  void send_pdu(const Pdu& pdu);

  net::HostNode& host_;
  ControllerConfig cfg_;
  ControllerState state_ = ControllerState::kIdle;

  std::unique_ptr<sim::PeriodicTask> cycle_task_;
  sim::EventHandle connect_timer_;
  std::size_t connect_attempts_ = 0;
  std::uint16_t tx_cycle_counter_ = 0;
  sim::SimTime last_input_rx_ = sim::SimTime::zero();
  std::vector<std::uint8_t> last_inputs_;

  std::function<std::vector<std::uint8_t>(std::size_t)> output_provider_;
  std::function<void(const std::vector<std::uint8_t>&)> input_handler_;
  std::function<void()> device_lost_handler_;
  std::function<void(bool)> connected_handler_;
  ControllerCounters counters_;
};

}  // namespace steelnet::profinet
