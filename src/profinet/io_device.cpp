#include "profinet/io_device.hpp"

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::profinet {

const char* to_string(DeviceState s) {
  switch (s) {
    case DeviceState::kIdle: return "idle";
    case DeviceState::kConnected: return "connected";
    case DeviceState::kDataExchange: return "data_exchange";
    case DeviceState::kWatchdogExpired: return "watchdog_expired";
  }
  return "?";
}

IoDevice::IoDevice(net::HostNode& host, IoDeviceConfig cfg)
    : host_(host), cfg_(cfg) {
  host_.set_receiver([this](net::Frame f, sim::SimTime at) {
    on_frame(f, at);
    // Consumed: the payload buffer goes back to the pool.
    host_.network().frame_pool().recycle(std::move(f));
  });
}

void IoDevice::send_pdu(const Pdu& pdu) {
  net::Frame f = host_.network().frame_pool().make(0);
  f.dst = controller_mac_;
  f.src = host_.mac();
  f.ethertype = net::EtherType::kProfinetRt;
  f.pcp = 6;
  f.flow_id = ar_id_;
  encode_into(pdu, f.payload);
  host_.send(std::move(f));
}

void IoDevice::on_frame(const net::Frame& frame, sim::SimTime) {
  if (frame.ethertype != net::EtherType::kProfinetRt) return;
  const auto pdu = decode(frame.payload);
  if (!pdu.has_value()) {
    ++counters_.malformed;
    return;
  }
  if (const auto* p = std::get_if<ConnectReq>(&*pdu)) {
    handle(*p, frame.src);
  } else if (const auto* p = std::get_if<ParamRecord>(&*pdu)) {
    handle(*p);
  } else if (const auto* p = std::get_if<ParamDone>(&*pdu)) {
    handle(*p);
  } else if (const auto* p = std::get_if<CyclicData>(&*pdu)) {
    handle(*p, frame.src);
  } else if (const auto* p = std::get_if<Release>(&*pdu)) {
    handle(*p);
  }
}

void IoDevice::handle(const ConnectReq& p, net::MacAddress from) {
  if (state_ != DeviceState::kIdle && p.ar_id != ar_id_) {
    // One AR at a time: reject the intruder (the paper's secondary vPLC
    // never reaches the device -- InstaPLC intercepts it; this path
    // guards direct misconfiguration).
    ++counters_.rejected_connects;
    const auto prev_mac = controller_mac_;
    const auto prev_ar = ar_id_;
    controller_mac_ = from;
    ar_id_ = p.ar_id;
    ConnectResp resp;
    resp.ar_id = p.ar_id;
    resp.status = 1;
    resp.device_id = cfg_.device_id;
    send_pdu(resp);
    controller_mac_ = prev_mac;
    ar_id_ = prev_ar;
    return;
  }
  ar_id_ = p.ar_id;
  controller_mac_ = from;
  cycle_ = sim::microseconds(p.cycle_time_us);
  watchdog_factor_ = p.watchdog_factor;
  input_bytes_ = p.input_bytes;
  records_.clear();
  state_ = DeviceState::kConnected;
  ConnectResp resp;
  resp.ar_id = ar_id_;
  resp.status = 0;
  resp.device_id = cfg_.device_id;
  send_pdu(resp);
}

void IoDevice::handle(const ParamRecord& p) {
  if (state_ != DeviceState::kConnected || p.ar_id != ar_id_) return;
  records_[p.record_index] = p.data;
}

void IoDevice::handle(const ParamDone& p) {
  if (state_ != DeviceState::kConnected || p.ar_id != ar_id_) return;
  start_data_exchange();
}

void IoDevice::start_data_exchange() {
  state_ = DeviceState::kDataExchange;
  last_output_rx_ = host_.network().sim().now();
  tx_cycle_counter_ = 0;
  cycle_task_ = std::make_unique<sim::PeriodicTask>(
      host_.network().sim(), host_.network().sim().now() + cycle_, cycle_,
      [this] { device_cycle(); });
}

void IoDevice::device_cycle() {
  auto& sim = host_.network().sim();
  // Watchdog: no fresh output data for `watchdog_factor` cycles => halt.
  if (state_ == DeviceState::kDataExchange &&
      sim.now() - last_output_rx_ >
          cycle_ * static_cast<std::int64_t>(watchdog_factor_)) {
    state_ = DeviceState::kWatchdogExpired;
    ++counters_.watchdog_trips;
    ++counters_.alarms_sent;
    if (output_handler_) output_handler_({}, /*run=*/false);
    Alarm alarm;
    alarm.ar_id = ar_id_;
    alarm.alarm_type = Alarm::kWatchdogExpired;
    send_pdu(alarm);
  }
  // Keep publishing inputs even in safe state (diagnosis needs them);
  // data_status reflects RUN.
  CyclicData out;
  out.ar_id = ar_id_;
  out.cycle_counter = tx_cycle_counter_++;
  out.data_status = state_ == DeviceState::kDataExchange ? 0b101 : 0b100;
  out.data = input_provider_
                 ? input_provider_(input_bytes_)
                 : std::vector<std::uint8_t>(input_bytes_, 0);
  ++counters_.cyclic_tx;
  send_pdu(out);
}

void IoDevice::handle(const CyclicData& p, net::MacAddress from) {
  if (p.ar_id != ar_id_) return;
  if (state_ != DeviceState::kDataExchange &&
      state_ != DeviceState::kWatchdogExpired) {
    return;
  }
  ++counters_.cyclic_rx;
  last_output_rx_ = host_.network().sim().now();
  // Follow the active controller: a redundancy standby that takes over
  // the AR sends from its own MAC; inputs must flow to whoever controls.
  controller_mac_ = from;
  if (state_ == DeviceState::kWatchdogExpired && cfg_.auto_resume) {
    state_ = DeviceState::kDataExchange;
  }
  if (state_ == DeviceState::kDataExchange && output_handler_) {
    output_handler_(p.data, p.running());
  }
}

void IoDevice::handle(const Release& p) {
  if (p.ar_id != ar_id_) return;
  cycle_task_.reset();
  state_ = DeviceState::kIdle;
  if (output_handler_) output_handler_({}, /*run=*/false);
}

void IoDevice::register_metrics(obs::ObsHub& hub) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const std::string& node = host_.name();
  reg.bind_counter({node, "profinet", "cyclic_rx"}, &counters_.cyclic_rx);
  reg.bind_counter({node, "profinet", "cyclic_tx"}, &counters_.cyclic_tx);
  reg.bind_counter({node, "profinet", "watchdog_trips"},
                   &counters_.watchdog_trips);
  reg.bind_counter({node, "profinet", "alarms_sent"}, &counters_.alarms_sent);
  reg.bind_counter({node, "profinet", "rejected_connects"},
                   &counters_.rejected_connects);
  reg.bind_counter({node, "profinet", "malformed"}, &counters_.malformed);
}

}  // namespace steelnet::profinet
