#include "sdn/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace steelnet::sdn {

std::vector<std::uint64_t> extract_key(const std::vector<FieldSpec>& fields,
                                       const net::Frame& frame,
                                       net::PortId in_port) {
  std::vector<std::uint64_t> key;
  key.reserve(fields.size());
  for (const auto& f : fields) {
    switch (f.kind) {
      case FieldKind::kInPort:
        key.push_back(in_port);
        break;
      case FieldKind::kEthSrc:
        key.push_back(frame.src.bits());
        break;
      case FieldKind::kEthDst:
        key.push_back(frame.dst.bits());
        break;
      case FieldKind::kEtherType:
        key.push_back(static_cast<std::uint64_t>(frame.ethertype));
        break;
      case FieldKind::kPayloadU8:
        key.push_back(f.offset < frame.payload.size()
                          ? frame.payload[f.offset]
                          : 0);
        break;
      case FieldKind::kPayloadU16:
        key.push_back(f.offset + 1 < frame.payload.size()
                          ? static_cast<std::uint64_t>(
                                frame.payload[f.offset] |
                                (frame.payload[f.offset + 1] << 8))
                          : 0);
        break;
    }
  }
  return key;
}

Table::Table(std::string name, std::vector<FieldSpec> key_fields,
             ActionList default_actions)
    : name_(std::move(name)),
      key_fields_(std::move(key_fields)),
      default_actions_(std::move(default_actions)) {}

EntryId Table::add_entry(TableEntry entry) {
  if (entry.values.size() != key_fields_.size()) {
    throw std::invalid_argument("Table " + name_ +
                                ": entry key width mismatch");
  }
  if (!entry.masks.empty() && entry.masks.size() != key_fields_.size()) {
    throw std::invalid_argument("Table " + name_ + ": mask width mismatch");
  }
  const EntryId id = next_id_++;
  entries_.emplace_back(id, std::move(entry));
  return id;
}

bool Table::remove_entry(EntryId id) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const auto& e) { return e.first == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool Table::set_actions(EntryId id, ActionList actions) {
  for (auto& [eid, e] : entries_) {
    if (eid == id) {
      e.actions = std::move(actions);
      return true;
    }
  }
  return false;
}

std::size_t Table::size() const { return entries_.size(); }

const TableEntry* Table::entry(EntryId id) const {
  for (const auto& [eid, e] : entries_) {
    if (eid == id) return &e;
  }
  return nullptr;
}

const ActionList& Table::match(const net::Frame& frame, net::PortId in_port,
                               std::uint64_t& hit_entry_out) {
  const auto key = extract_key(key_fields_, frame, in_port);
  TableEntry* best = nullptr;
  EntryId best_id = kDefaultEntry;
  for (auto& [id, e] : entries_) {
    bool ok = true;
    for (std::size_t i = 0; i < key.size(); ++i) {
      const std::uint64_t mask =
          e.masks.empty() ? ~0ULL : e.masks[i];
      if ((key[i] & mask) != (e.values[i] & mask)) {
        ok = false;
        break;
      }
    }
    if (ok && (best == nullptr || e.priority > best->priority)) {
      best = &e;
      best_id = id;
    }
  }
  if (best == nullptr) {
    ++default_hits_;
    hit_entry_out = kDefaultEntry;
    return default_actions_;
  }
  ++best->hits;
  best->hit_bytes += frame.wire_bytes();
  hit_entry_out = best_id;
  return best->actions;
}

std::size_t Pipeline::add_table(Table table) {
  tables_.push_back(std::move(table));
  return tables_.size() - 1;
}

PipelineResult Pipeline::process(net::Frame& frame, net::PortId in_port) {
  PipelineResult result;
  if (tables_.empty()) {
    result.dropped = true;
    return result;
  }
  std::optional<net::PortId> egress;
  std::vector<EgressCopy> mirrors;
  bool drop = false;

  std::size_t table_idx = 0;
  // Goto chains are bounded by the table count (no loops by construction:
  // each traversal visits each table at most once).
  for (std::size_t steps = 0; steps <= tables_.size(); ++steps) {
    std::uint64_t hit;
    const ActionList& actions = tables_[table_idx].match(frame, in_port, hit);
    std::optional<std::size_t> next;
    for (const auto& a : actions) {
      switch (a.kind) {
        case ActionPrimitive::Kind::kSetEgress:
          egress = static_cast<net::PortId>(a.arg0);
          break;
        case ActionPrimitive::Kind::kAddMirror:
          mirrors.push_back(
              {static_cast<net::PortId>(a.arg0), std::nullopt, std::nullopt});
          break;
        case ActionPrimitive::Kind::kAddMirrorDst:
          mirrors.push_back({static_cast<net::PortId>(a.arg0),
                             net::MacAddress{a.arg1}, std::nullopt});
          break;
        case ActionPrimitive::Kind::kAddMirrorXform:
          mirrors.push_back({static_cast<net::PortId>(a.arg0),
                             net::MacAddress{a.arg1},
                             CopyRewrite{a.offset, a.bytes}});
          break;
        case ActionPrimitive::Kind::kDrop:
          drop = true;
          break;
        case ActionPrimitive::Kind::kSetDst:
          frame.dst = net::MacAddress{a.arg0};
          break;
        case ActionPrimitive::Kind::kSetSrc:
          frame.src = net::MacAddress{a.arg0};
          break;
        case ActionPrimitive::Kind::kRewriteBytes:
          for (std::size_t i = 0; i < a.bytes.size(); ++i) {
            if (a.offset + i < frame.payload.size()) {
              frame.payload[a.offset + i] = a.bytes[i];
            }
          }
          break;
        case ActionPrimitive::Kind::kPunt:
          result.punted = true;
          break;
        case ActionPrimitive::Kind::kGotoTable:
          if (a.arg0 < tables_.size()) next = a.arg0;
          break;
      }
    }
    if (!next.has_value()) break;
    table_idx = *next;
  }

  if (!drop && egress.has_value()) {
    result.egress.push_back({*egress, std::nullopt, std::nullopt});
  }
  for (const EgressCopy& m : mirrors) result.egress.push_back(m);
  result.dropped = result.egress.empty();
  return result;
}

}  // namespace steelnet::sdn
