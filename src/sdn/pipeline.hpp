// steelnet::sdn -- a P4-style match-action pipeline.
//
// The shape mirrors the DPDK SWX pipeline the paper built InstaPLC on
// (§4): typed match keys extracted from the frame, ternary tables with
// priorities, action lists (forward / mirror / rewrite / punt), and
// per-entry hit counters. The control plane is whoever holds a reference
// to the Pipeline and edits its tables.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/node.hpp"

namespace steelnet::sdn {

/// What part of the frame a key field reads.
enum class FieldKind : std::uint8_t {
  kInPort,
  kEthSrc,
  kEthDst,
  kEtherType,
  kPayloadU8,   ///< payload byte at `offset` (0 when out of range)
  kPayloadU16,  ///< little-endian u16 at `offset`
};

struct FieldSpec {
  FieldKind kind;
  std::size_t offset = 0;  ///< for the payload kinds
};

/// Extracts the key fields of one frame.
[[nodiscard]] std::vector<std::uint64_t> extract_key(
    const std::vector<FieldSpec>& fields, const net::Frame& frame,
    net::PortId in_port);

/// One step of an action list.
struct ActionPrimitive {
  enum class Kind : std::uint8_t {
    kSetEgress,       ///< arg0 = port
    kAddMirror,       ///< arg0 = port (copy also sent here)
    kAddMirrorDst,    ///< arg0 = port, arg1 = dst mac bits
    kAddMirrorXform,  ///< kAddMirrorDst + payload rewrite on the copy
    kDrop,            ///< terminal: no egress
    kSetDst,          ///< arg0 = mac bits
    kSetSrc,          ///< arg0 = mac bits
    kRewriteBytes,    ///< payload[offset..] = bytes
    kPunt,            ///< hand a copy to the control application
    kGotoTable,       ///< arg0 = next table index
  };
  Kind kind;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::size_t offset = 0;
  std::vector<std::uint8_t> bytes;

  static ActionPrimitive set_egress(net::PortId port) {
    return {Kind::kSetEgress, port, 0, 0, {}};
  }
  static ActionPrimitive add_mirror(net::PortId port) {
    return {Kind::kAddMirror, port, 0, 0, {}};
  }
  /// Mirror whose copy gets a rewritten destination MAC -- lets a copy
  /// pass another host's NIC filter (InstaPLC's rule 3: device frames go
  /// to both the primary and the secondary vPLC).
  static ActionPrimitive add_mirror_with_dst(net::PortId port,
                                             net::MacAddress dst) {
    return {Kind::kAddMirrorDst, port, dst.bits(), 0, {}};
  }
  /// Mirror with rewritten destination MAC *and* a payload rewrite on
  /// the copy only (e.g. translating the AR id for a standby controller).
  static ActionPrimitive add_mirror_transformed(
      net::PortId port, net::MacAddress dst, std::size_t offset,
      std::vector<std::uint8_t> bytes) {
    return {Kind::kAddMirrorXform, port, dst.bits(), offset,
            std::move(bytes)};
  }
  static ActionPrimitive drop() { return {Kind::kDrop, 0, 0, 0, {}}; }
  static ActionPrimitive set_dst(net::MacAddress mac) {
    return {Kind::kSetDst, mac.bits(), 0, 0, {}};
  }
  static ActionPrimitive set_src(net::MacAddress mac) {
    return {Kind::kSetSrc, mac.bits(), 0, 0, {}};
  }
  static ActionPrimitive rewrite_bytes(std::size_t offset,
                                       std::vector<std::uint8_t> bytes) {
    return {Kind::kRewriteBytes, 0, 0, offset, std::move(bytes)};
  }
  static ActionPrimitive punt() { return {Kind::kPunt, 0, 0, 0, {}}; }
  static ActionPrimitive goto_table(std::size_t table) {
    return {Kind::kGotoTable, table, 0, 0, {}};
  }
};

using ActionList = std::vector<ActionPrimitive>;

/// A ternary entry: matches when (key & mask) == (value & mask) for every
/// field. Highest priority wins; ties break to the earliest-added entry.
struct TableEntry {
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> masks;  ///< empty = exact match on all fields
  std::int32_t priority = 0;
  ActionList actions;
  std::string label;  ///< for debugging/tests
  // --- runtime ---
  std::uint64_t hits = 0;
  std::uint64_t hit_bytes = 0;
};

using EntryId = std::uint64_t;

class Table {
 public:
  Table(std::string name, std::vector<FieldSpec> key_fields,
        ActionList default_actions = {ActionPrimitive::drop()});

  EntryId add_entry(TableEntry entry);
  bool remove_entry(EntryId id);
  /// Replaces the actions of an existing entry (hitless rule update).
  bool set_actions(EntryId id, ActionList actions);

  /// Matches `frame`; returns the winning entry's actions (updating its
  /// counters) or the default actions.
  const ActionList& match(const net::Frame& frame, net::PortId in_port,
                          std::uint64_t& hit_entry_out);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const TableEntry* entry(EntryId id) const;
  [[nodiscard]] std::uint64_t default_hits() const { return default_hits_; }
  [[nodiscard]] const std::vector<FieldSpec>& key_fields() const {
    return key_fields_;
  }

  static constexpr EntryId kDefaultEntry = static_cast<EntryId>(-1);

 private:
  std::string name_;
  std::vector<FieldSpec> key_fields_;
  ActionList default_actions_;
  std::vector<std::pair<EntryId, TableEntry>> entries_;
  EntryId next_id_ = 0;
  std::uint64_t default_hits_ = 0;
};

/// A payload rewrite applied to a single egress copy.
struct CopyRewrite {
  std::size_t offset;
  std::vector<std::uint8_t> bytes;
};

/// One output copy of a pipeline traversal.
struct EgressCopy {
  net::PortId port;
  /// When set, this copy's destination MAC is rewritten on emission.
  std::optional<net::MacAddress> dst_override;
  /// When set, these payload bytes are rewritten on this copy only.
  std::optional<CopyRewrite> rewrite;
};

/// The verdict of a pipeline traversal.
struct PipelineResult {
  std::vector<EgressCopy> egress;  ///< primary + mirrors, in order
  bool punted = false;
  bool dropped = false;  ///< explicit drop (or no egress set)
};

class Pipeline {
 public:
  /// Adds a table; returns its index. Execution starts at table 0.
  std::size_t add_table(Table table);
  [[nodiscard]] Table& table(std::size_t idx) { return tables_.at(idx); }
  [[nodiscard]] const Table& table(std::size_t idx) const {
    return tables_.at(idx);
  }
  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }

  /// Runs the frame through the tables (following GotoTable, bounded by
  /// the table count to keep traversal loop-free). May rewrite `frame`.
  PipelineResult process(net::Frame& frame, net::PortId in_port);

 private:
  std::vector<Table> tables_;
};

}  // namespace steelnet::sdn
