#include "sdn/sdn_switch.hpp"

#include "obs/hub.hpp"

namespace steelnet::sdn {

SdnSwitchNode::SdnSwitchNode(SdnSwitchConfig cfg) : cfg_(cfg) {}

net::EgressQueue& SdnSwitchNode::queue_for(net::PortId port) {
  if (egress_.size() <= port) egress_.resize(port + 1u);
  if (!egress_[port]) {
    egress_[port] =
        std::make_unique<net::EgressQueue>(*this, port, cfg_.queue_capacity);
  }
  return *egress_[port];
}

void SdnSwitchNode::handle_frame(net::Frame frame, net::PortId in_port) {
  observe_frame(frame, in_port);
  ++counters_.frames_in;
  if (inspector_) inspector_(frame, in_port);
  if (obs::ObsHub* hub = network().obs();
      hub != nullptr && frame.trace_id != 0) {
    if (obs_track_ == static_cast<std::uint32_t>(-1)) {
      obs_track_ = hub->track(name());
    }
    const sim::SimTime now = network().sim().now();
    hub->proc(frame.trace_id, obs_track_, now, now + cfg_.pipeline_latency);
  }
  network().sim().schedule_in(
      cfg_.pipeline_latency,
      [this, f = std::move(frame), in_port]() mutable {
        net::Frame frame = std::move(f);
        const PipelineResult r = pipeline_.process(frame, in_port);
        if (r.punted) {
          ++counters_.punted;
          if (punt_) punt_(frame, in_port);
        }
        if (r.dropped) {
          ++counters_.dropped;
          network().frame_pool().recycle(std::move(frame));
          return;
        }
        if (r.egress.empty()) {
          network().frame_pool().recycle(std::move(frame));
          return;
        }
        for (std::size_t i = 0; i < r.egress.size(); ++i) {
          ++counters_.frames_out;
          // Multicast copies draw their payload buffers from the pool.
          net::Frame copy = i + 1 == r.egress.size()
                                ? std::move(frame)
                                : network().frame_pool().clone(frame);
          if (r.egress[i].dst_override.has_value()) {
            copy.dst = *r.egress[i].dst_override;
          }
          if (r.egress[i].rewrite.has_value()) {
            const auto& rw = *r.egress[i].rewrite;
            for (std::size_t b = 0; b < rw.bytes.size(); ++b) {
              if (rw.offset + b < copy.payload.size()) {
                copy.payload[rw.offset + b] = rw.bytes[b];
              }
            }
          }
          queue_for(r.egress[i].port).enqueue(std::move(copy));
        }
      });
}

void SdnSwitchNode::inject(net::Frame frame, net::PortId port) {
  ++counters_.injected;
  queue_for(port).enqueue(std::move(frame));
}

void SdnSwitchNode::on_channel_idle(net::PortId port) {
  if (port < egress_.size() && egress_[port]) egress_[port]->drain();
}

void SdnSwitchNode::register_metrics(obs::ObsHub& hub) {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({name(), "sdn", "frames_in"}, &counters_.frames_in);
  reg.bind_counter({name(), "sdn", "frames_out"}, &counters_.frames_out);
  reg.bind_counter({name(), "sdn", "dropped"}, &counters_.dropped);
  reg.bind_counter({name(), "sdn", "punted"}, &counters_.punted);
  reg.bind_counter({name(), "sdn", "injected"}, &counters_.injected);
  for (const auto& [port, peer] : network().ports_of(id())) {
    (void)peer;
    queue_for(port).register_metrics(hub);
  }
}

}  // namespace steelnet::sdn
