// steelnet::sdn -- the programmable software switch node.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/egress_queue.hpp"
#include "net/node.hpp"
#include "sdn/pipeline.hpp"

namespace steelnet::sdn {

struct SdnSwitchConfig {
  /// Per-frame pipeline traversal latency (SWX software switches run a
  /// few hundred ns per packet per core).
  sim::SimTime pipeline_latency = sim::nanoseconds(800);
  std::size_t queue_capacity = 4096;
};

struct SdnSwitchCounters {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t dropped = 0;
  std::uint64_t punted = 0;
  std::uint64_t injected = 0;
};

/// A switch whose entire forwarding behaviour is its Pipeline.
///
/// The control application can: edit tables (via pipeline()), observe
/// every ingress frame (inspector -- models mirror-to-CPU), receive
/// punted frames, and inject frames out of any port (in-network endpoint
/// behaviour, e.g. InstaPLC's digital twin answering a vPLC).
class SdnSwitchNode final : public net::Node {
 public:
  explicit SdnSwitchNode(SdnSwitchConfig cfg = {});

  void handle_frame(net::Frame frame, net::PortId in_port) override;
  void on_channel_idle(net::PortId port) override;

  [[nodiscard]] Pipeline& pipeline() { return pipeline_; }

  /// Sees every ingress frame before the pipeline runs (read-only spy).
  void set_inspector(
      std::function<void(const net::Frame&, net::PortId)> fn) {
    inspector_ = std::move(fn);
  }
  /// Receives a copy of frames whose action list includes kPunt.
  void set_punt_handler(
      std::function<void(const net::Frame&, net::PortId)> fn) {
    punt_ = std::move(fn);
  }

  /// Emits a control-application-crafted frame out of `port`.
  void inject(net::Frame frame, net::PortId port);

  [[nodiscard]] const SdnSwitchCounters& counters() const {
    return counters_;
  }

  /// Binds switch + per-port egress counters under `<name>/sdn/...`.
  /// Materializes egress queues of connected ports; call after links are
  /// connected.
  void register_metrics(obs::ObsHub& hub);

 private:
  net::EgressQueue& queue_for(net::PortId port);

  SdnSwitchConfig cfg_;
  Pipeline pipeline_;
  std::vector<std::unique_ptr<net::EgressQueue>> egress_;
  std::uint32_t obs_track_ = static_cast<std::uint32_t>(-1);
  std::function<void(const net::Frame&, net::PortId)> inspector_;
  std::function<void(const net::Frame&, net::PortId)> punt_;
  SdnSwitchCounters counters_;
};

}  // namespace steelnet::sdn
