#include "host/kernel.hpp"

#include <cmath>

namespace steelnet::host {

std::string_view to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kVanilla:
      return "vanilla";
    case KernelKind::kPreemptRt:
      return "preempt_rt";
    case KernelKind::kDualKernel:
      return "dual_kernel";
  }
  return "?";
}

KernelModelParams kernel_params(KernelKind kind) {
  switch (kind) {
    case KernelKind::kVanilla:
      // Low median but heavy, frequent tails (timer ticks, softirq storms).
      return {sim::microseconds(3), 0.45, 0.02, sim::microseconds(20), 1.3};
    case KernelKind::kPreemptRt:
      // Slightly higher median (preemptible everything costs throughput),
      // tails rarer and flatter -- but not zero (§2.1: not hard real-time).
      return {sim::microseconds(4), 0.20, 0.002, sim::microseconds(12), 2.0};
    case KernelKind::kDualKernel:
      // Co-kernel handles RT path: tight, nearly deterministic.
      return {sim::microseconds(1), 0.05, 0.0001, sim::microseconds(3), 3.0};
  }
  return {};
}

KernelModel::KernelModel(KernelKind kind, std::uint64_t seed)
    : KernelModel(kernel_params(kind), seed) {}

KernelModel::KernelModel(KernelModelParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

sim::SimTime KernelModel::sample(std::size_t) {
  const double mu = std::log(double(params_.median.nanos()));
  auto v = static_cast<std::int64_t>(rng_.lognormal(mu, params_.sigma));
  if (params_.tail_prob > 0 && rng_.bernoulli(params_.tail_prob)) {
    v += static_cast<std::int64_t>(
        rng_.pareto(double(params_.tail_scale.nanos()), params_.tail_alpha));
  }
  return sim::SimTime{v};
}

}  // namespace steelnet::host
