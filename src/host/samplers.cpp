#include "host/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace steelnet::host {

NormalSampler::NormalSampler(sim::SimTime mean, sim::SimTime stddev,
                             sim::SimTime floor, std::uint64_t seed)
    : mean_(mean), stddev_(stddev), floor_(floor), rng_(seed) {}

sim::SimTime NormalSampler::sample(std::size_t) {
  const double v = rng_.normal(double(mean_.nanos()), double(stddev_.nanos()));
  return std::max(floor_, sim::SimTime{static_cast<std::int64_t>(v)});
}

LognormalSampler::LognormalSampler(sim::SimTime median, double sigma,
                                   std::uint64_t seed)
    : mu_(std::log(double(median.nanos()))), sigma_(sigma), rng_(seed) {
  if (median <= sim::SimTime::zero() || sigma < 0) {
    throw std::invalid_argument("LognormalSampler: bad parameters");
  }
}

sim::SimTime LognormalSampler::sample(std::size_t) {
  return sim::SimTime{
      static_cast<std::int64_t>(rng_.lognormal(mu_, sigma_))};
}

ParetoTailSampler::ParetoTailSampler(sim::SimTime base, double tail_prob,
                                     sim::SimTime scale, double alpha,
                                     std::uint64_t seed)
    : base_(base),
      tail_prob_(tail_prob),
      scale_ns_(double(scale.nanos())),
      alpha_(alpha),
      rng_(seed) {
  if (tail_prob < 0 || tail_prob > 1) {
    throw std::invalid_argument("ParetoTailSampler: bad tail probability");
  }
}

sim::SimTime ParetoTailSampler::sample(std::size_t) {
  sim::SimTime v = base_;
  if (tail_prob_ > 0 && rng_.bernoulli(tail_prob_)) {
    v += sim::SimTime{
        static_cast<std::int64_t>(rng_.pareto(scale_ns_, alpha_))};
  }
  return v;
}

void ChainSampler::add(std::unique_ptr<LatencySampler> stage) {
  stages_.push_back(std::move(stage));
}

sim::SimTime ChainSampler::sample(std::size_t bytes) {
  sim::SimTime total = sim::SimTime::zero();
  for (auto& s : stages_) total += s->sample(bytes);
  return total;
}

ContentionScaledSampler::ContentionScaledSampler(
    std::unique_ptr<LatencySampler> inner, double slope, double jitter_sigma,
    std::uint64_t seed)
    : inner_(std::move(inner)),
      slope_(slope),
      jitter_sigma_(jitter_sigma),
      rng_(seed) {
  if (!inner_) throw std::invalid_argument("ContentionScaledSampler: null");
}

void ContentionScaledSampler::set_load(std::size_t concurrent_flows) {
  load_ = std::max<std::size_t>(1, concurrent_flows);
}

sim::SimTime ContentionScaledSampler::sample(std::size_t bytes) {
  const sim::SimTime base = inner_->sample(bytes);
  const double extra = double(load_ - 1);
  double factor = 1.0 + slope_ * extra;
  if (extra > 0 && jitter_sigma_ > 0) {
    factor *= std::max(0.0, rng_.normal(1.0, jitter_sigma_ * std::sqrt(extra)));
  }
  return sim::SimTime{
      static_cast<std::int64_t>(double(base.nanos()) * factor)};
}

}  // namespace steelnet::host
