#include "host/host_path.hpp"

#include <stdexcept>

namespace steelnet::host {

HostPath::HostPath(std::unique_ptr<LatencySampler> rx,
                   std::unique_ptr<LatencySampler> tx,
                   ContentionScaledSampler* rx_contention,
                   ContentionScaledSampler* tx_contention)
    : rx_(std::move(rx)),
      tx_(std::move(tx)),
      rx_contention_(rx_contention),
      tx_contention_(tx_contention) {
  if (!rx_ || !tx_) throw std::invalid_argument("HostPath: null sampler");
}

sim::SimTime HostPath::sample_rx(std::size_t bytes) {
  return rx_->sample(bytes);
}

sim::SimTime HostPath::sample_tx(std::size_t bytes) {
  return tx_->sample(bytes);
}

void HostPath::set_load(std::size_t concurrent_flows) {
  if (rx_contention_ != nullptr) rx_contention_->set_load(concurrent_flows);
  if (tx_contention_ != nullptr) tx_contention_->set_load(concurrent_flows);
}

namespace {

/// pcie + kernel in series, optionally wrapped in a contention scaler.
std::unique_ptr<LatencySampler> make_stack(
    KernelKind kernel, PcieConfig pcie, bool contended, std::uint64_t seed,
    ContentionScaledSampler** contention_out) {
  auto chain = std::make_unique<ChainSampler>();
  chain->add(std::make_unique<PcieModel>(pcie, seed ^ 0x1));
  chain->add(std::make_unique<KernelModel>(kernel, seed ^ 0x2));
  if (!contended) {
    *contention_out = nullptr;
    return chain;
  }
  auto scaled = std::make_unique<ContentionScaledSampler>(
      std::move(chain), /*slope=*/0.06, /*jitter_sigma=*/0.03, seed ^ 0x3);
  *contention_out = scaled.get();
  return scaled;
}

std::unique_ptr<HostPath> make_path(KernelKind kernel, PcieConfig pcie,
                                    bool contended, std::uint64_t seed,
                                    sim::SimTime extra_fixed =
                                        sim::SimTime::zero()) {
  ContentionScaledSampler* rx_c = nullptr;
  ContentionScaledSampler* tx_c = nullptr;
  auto wrap = [&](std::unique_ptr<LatencySampler> inner) {
    if (extra_fixed == sim::SimTime::zero()) return inner;
    auto chain = std::make_unique<ChainSampler>();
    chain->add(std::move(inner));
    chain->add(std::make_unique<FixedSampler>(extra_fixed));
    return std::unique_ptr<LatencySampler>(std::move(chain));
  };
  auto rx = wrap(make_stack(kernel, pcie, contended, seed * 2 + 1, &rx_c));
  auto tx = wrap(make_stack(kernel, pcie, contended, seed * 2 + 2, &tx_c));
  return std::make_unique<HostPath>(std::move(rx), std::move(tx), rx_c, tx_c);
}

}  // namespace

std::unique_ptr<HostPath> HostProfile::ideal() {
  return std::make_unique<HostPath>(
      std::make_unique<FixedSampler>(sim::SimTime::zero()),
      std::make_unique<FixedSampler>(sim::SimTime::zero()));
}

std::unique_ptr<HostPath> HostProfile::bare_metal_rt(std::uint64_t seed) {
  PcieConfig pcie;
  pcie.base = sim::nanoseconds(700);  // tuned NIC, write-combined doorbells
  pcie.jitter = sim::nanoseconds(15);
  return make_path(KernelKind::kDualKernel, pcie, /*contended=*/false, seed);
}

std::unique_ptr<HostPath> HostProfile::server_preempt_rt(std::uint64_t seed) {
  return make_path(KernelKind::kPreemptRt, PcieConfig{}, /*contended=*/true,
                   seed);
}

std::unique_ptr<HostPath> HostProfile::server_vanilla(std::uint64_t seed) {
  return make_path(KernelKind::kVanilla, PcieConfig{}, /*contended=*/true,
                   seed);
}

std::unique_ptr<HostPath> HostProfile::virtualized_rt(std::uint64_t seed) {
  // The virtual switch / vhost hop adds a couple of microseconds each way.
  return make_path(KernelKind::kPreemptRt, PcieConfig{}, /*contended=*/true,
                   seed, sim::microseconds(2));
}

std::unique_ptr<HostPath> HostProfile::by_name(const std::string& name,
                                               std::uint64_t seed) {
  if (name == "ideal") return ideal();
  if (name == "bare_metal_rt") return bare_metal_rt(seed);
  if (name == "server_preempt_rt") return server_preempt_rt(seed);
  if (name == "server_vanilla") return server_vanilla(seed);
  if (name == "virtualized_rt") return virtualized_rt(seed);
  throw std::invalid_argument("unknown host profile: " + name);
}

}  // namespace steelnet::host
