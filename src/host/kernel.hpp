// steelnet::host -- kernel scheduling-latency model.
//
// §2.1: dual-kernel RTOSes outperform PREEMPT_RT, but PREEMPT_RT "cannot
// be considered hard real-time due to unpredictable kernel-induced
// latencies" [84]. We model three kernels:
//   kVanilla    -- mainline Linux: low median, frequent multi-10us tails
//   kPreemptRt  -- PREEMPT_RT: slightly higher median, rare bounded tails
//   kDualKernel -- Xenomai-style co-kernel: tight and nearly fixed
// Parameters are shaped to reproduce the *relative* behaviour reported in
// the cyclictest literature, not any specific machine.
#pragma once

#include <cstdint>
#include <string_view>

#include "host/samplers.hpp"

namespace steelnet::host {

enum class KernelKind : std::uint8_t { kVanilla, kPreemptRt, kDualKernel };

[[nodiscard]] std::string_view to_string(KernelKind kind);

struct KernelModelParams {
  sim::SimTime median;
  double sigma;          ///< lognormal shape of the body
  double tail_prob;      ///< probability of a preemption excursion
  sim::SimTime tail_scale;
  double tail_alpha;
};

/// Canonical parameters for each kernel kind.
[[nodiscard]] KernelModelParams kernel_params(KernelKind kind);

/// Scheduling + softirq + wakeup latency of one packet traversal.
class KernelModel final : public LatencySampler {
 public:
  KernelModel(KernelKind kind, std::uint64_t seed);
  KernelModel(KernelModelParams params, std::uint64_t seed);

  sim::SimTime sample(std::size_t bytes) override;

  [[nodiscard]] const KernelModelParams& params() const { return params_; }

 private:
  KernelModelParams params_;
  sim::Rng rng_;
};

}  // namespace steelnet::host
