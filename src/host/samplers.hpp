// steelnet::host -- stochastic latency samplers.
//
// Each sampler draws the time one stage of the host path contributes to a
// frame of a given size. Samplers own their RNG stream so that composing
// them never perturbs each other's sequences.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace steelnet::host {

class LatencySampler {
 public:
  virtual ~LatencySampler() = default;
  /// Latency contribution for a frame with `bytes` of payload.
  virtual sim::SimTime sample(std::size_t bytes) = 0;
};

/// Always the same value -- ideal hardware, useful as a baseline.
class FixedSampler final : public LatencySampler {
 public:
  explicit FixedSampler(sim::SimTime value) : value_(value) {}
  sim::SimTime sample(std::size_t) override { return value_; }

 private:
  sim::SimTime value_;
};

/// Normal around a mean, truncated below at `floor` (latency can't be
/// negative, and physical stages have a hard minimum).
class NormalSampler final : public LatencySampler {
 public:
  NormalSampler(sim::SimTime mean, sim::SimTime stddev, sim::SimTime floor,
                std::uint64_t seed);
  sim::SimTime sample(std::size_t bytes) override;

 private:
  sim::SimTime mean_, stddev_, floor_;
  sim::Rng rng_;
};

/// Lognormal parameterized by its median and shape -- the classic model
/// for software-stack latencies (right-skewed, no negative values).
class LognormalSampler final : public LatencySampler {
 public:
  LognormalSampler(sim::SimTime median, double sigma, std::uint64_t seed);
  sim::SimTime sample(std::size_t bytes) override;

 private:
  double mu_;  ///< ln(median in ns)
  double sigma_;
  sim::Rng rng_;
};

/// `base` plus, with probability `tail_prob`, a Pareto excursion --
/// models rare scheduler preemptions / SMIs / page faults.
class ParetoTailSampler final : public LatencySampler {
 public:
  ParetoTailSampler(sim::SimTime base, double tail_prob, sim::SimTime scale,
                    double alpha, std::uint64_t seed);
  sim::SimTime sample(std::size_t bytes) override;

 private:
  sim::SimTime base_;
  double tail_prob_;
  double scale_ns_;
  double alpha_;
  sim::Rng rng_;
};

/// Sum of child samplers (stages in series).
class ChainSampler final : public LatencySampler {
 public:
  void add(std::unique_ptr<LatencySampler> stage);
  sim::SimTime sample(std::size_t bytes) override;
  [[nodiscard]] std::size_t stages() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<LatencySampler>> stages_;
};

/// Scales another sampler's output by a load factor -- models contention:
/// the more concurrently active flows/VMs share the host, the larger and
/// more variable each stage's latency (§2.1: poor coordination among
/// processors, memory and peripheral interconnects creates contention).
class ContentionScaledSampler final : public LatencySampler {
 public:
  /// effective = inner * (1 + slope * (load - 1)) with multiplicative
  /// jitter ~ N(1, jitter_sigma * sqrt(load - 1)) for load > 1.
  ContentionScaledSampler(std::unique_ptr<LatencySampler> inner, double slope,
                          double jitter_sigma, std::uint64_t seed);

  void set_load(std::size_t concurrent_flows);
  [[nodiscard]] std::size_t load() const { return load_; }

  sim::SimTime sample(std::size_t bytes) override;

 private:
  std::unique_ptr<LatencySampler> inner_;
  double slope_;
  double jitter_sigma_;
  std::size_t load_ = 1;
  sim::Rng rng_;
};

}  // namespace steelnet::host
