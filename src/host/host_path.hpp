// steelnet::host -- composed host rx/tx paths and canonical host profiles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "host/kernel.hpp"
#include "host/pcie.hpp"
#include "host/samplers.hpp"
#include "net/host_node.hpp"

namespace steelnet::host {

/// A full host path: PCIe + kernel + contention, for rx and tx, pluggable
/// into net::HostNode. Owns its samplers.
class HostPath final : public net::HostPathModel {
 public:
  /// The contention handles, when given, must point into the respective
  /// sampler chains (set_load is forwarded to them).
  HostPath(std::unique_ptr<LatencySampler> rx,
           std::unique_ptr<LatencySampler> tx,
           ContentionScaledSampler* rx_contention = nullptr,
           ContentionScaledSampler* tx_contention = nullptr);

  sim::SimTime sample_rx(std::size_t bytes) override;
  sim::SimTime sample_tx(std::size_t bytes) override;

  /// Informs contention-aware stages how many flows share the host.
  /// (No-op for paths without a ContentionScaledSampler.)
  void set_load(std::size_t concurrent_flows);

 private:
  std::unique_ptr<LatencySampler> rx_;
  std::unique_ptr<LatencySampler> tx_;
  ContentionScaledSampler* rx_contention_ = nullptr;  // borrowed from rx_
  ContentionScaledSampler* tx_contention_ = nullptr;  // borrowed from tx_
};

/// Named host configurations used across experiments.
class HostProfile {
 public:
  /// Zero-latency host: frames go NIC <-> app instantly.
  static std::unique_ptr<HostPath> ideal();

  /// Bare-metal industrial PC, dual-kernel RTOS, DPDK-style polling:
  /// the hardware-PLC stand-in.
  static std::unique_ptr<HostPath> bare_metal_rt(std::uint64_t seed);

  /// Server with PREEMPT_RT kernel (the paper's test end hosts, §3).
  static std::unique_ptr<HostPath> server_preempt_rt(std::uint64_t seed);

  /// Server with vanilla kernel -- the worst case for vPLCs.
  static std::unique_ptr<HostPath> server_vanilla(std::uint64_t seed);

  /// Virtualized (container/VM) PREEMPT_RT host: adds a vswitch/vhost
  /// traversal stage on top of server_preempt_rt. The vPLC default.
  static std::unique_ptr<HostPath> virtualized_rt(std::uint64_t seed);

  /// Builds the profile by name ("ideal", "bare_metal_rt", ...); throws
  /// std::invalid_argument for unknown names. For config files.
  static std::unique_ptr<HostPath> by_name(const std::string& name,
                                           std::uint64_t seed);
};

}  // namespace steelnet::host
