// steelnet::host -- PCIe transaction latency model.
//
// Neugebauer et al. ("Understanding PCIe performance for end host
// networking", SIGCOMM'18, cited as [77]) showed PCIe contributes more
// than 90% of NIC latency for small packets: per-TLP overheads dominate
// because a tiny payload still pays descriptor fetch, doorbell, DMA
// round-trip and completion. The model below reproduces that shape:
// near-constant latency for small frames, linear growth once payload
// spans multiple TLPs.
#pragma once

#include <cstdint>

#include "host/samplers.hpp"

namespace steelnet::host {

struct PcieConfig {
  /// Per-transaction fixed cost: doorbell + descriptor + completion.
  sim::SimTime base = sim::nanoseconds(850);
  /// Maximum TLP payload size (bytes).
  std::size_t tlp_bytes = 256;
  /// Additional cost per TLP beyond the first.
  sim::SimTime per_tlp = sim::nanoseconds(120);
  /// DMA streaming cost per byte (link + memory bandwidth).
  sim::SimTime per_byte = sim::nanoseconds(0);  // folded into per_tlp default
  /// Jitter (std dev) on the total, from relaxed-ordering/credit effects.
  sim::SimTime jitter = sim::nanoseconds(40);
};

class PcieModel final : public LatencySampler {
 public:
  PcieModel(PcieConfig cfg, std::uint64_t seed);

  sim::SimTime sample(std::size_t bytes) override;

  /// Deterministic component (no jitter) -- used by tests and docs.
  [[nodiscard]] sim::SimTime nominal(std::size_t bytes) const;

  /// Fraction of `nominal(bytes)` that is the fixed per-transaction
  /// overhead -- for small industrial payloads this exceeds 0.9,
  /// matching the paper's ">90% of the overall NIC latency" claim.
  [[nodiscard]] double overhead_fraction(std::size_t bytes) const;

 private:
  PcieConfig cfg_;
  sim::Rng rng_;
};

}  // namespace steelnet::host
