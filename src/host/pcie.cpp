#include "host/pcie.hpp"

#include <algorithm>
#include <stdexcept>

namespace steelnet::host {

PcieModel::PcieModel(PcieConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  if (cfg_.tlp_bytes == 0) throw std::invalid_argument("PcieModel: tlp=0");
}

sim::SimTime PcieModel::nominal(std::size_t bytes) const {
  const std::size_t tlps =
      bytes == 0 ? 1 : (bytes + cfg_.tlp_bytes - 1) / cfg_.tlp_bytes;
  return cfg_.base + cfg_.per_tlp * static_cast<std::int64_t>(tlps - 1) +
         cfg_.per_byte * static_cast<std::int64_t>(bytes);
}

double PcieModel::overhead_fraction(std::size_t bytes) const {
  const auto total = nominal(bytes);
  if (total <= sim::SimTime::zero()) return 0.0;
  return double(cfg_.base.nanos()) / double(total.nanos());
}

sim::SimTime PcieModel::sample(std::size_t bytes) {
  const sim::SimTime nom = nominal(bytes);
  const auto noise = static_cast<std::int64_t>(
      rng_.normal(0.0, double(cfg_.jitter.nanos())));
  return std::max(sim::SimTime{nom.nanos() / 2}, nom + sim::SimTime{noise});
}

}  // namespace steelnet::host
