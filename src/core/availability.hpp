// steelnet::core -- service-availability arithmetic (§2.2).
//
// "Use cases such as motion control, mobile robots, and process
// monitoring require extreme service availability -- at least 99.9999%.
// This corresponds to a downtime of less than 31.5 s per year."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::core {

constexpr double kSecondsPerYear = 365.0 * 24 * 3600;

/// Downtime per year implied by an availability fraction (0.999999 ->
/// ~31.5 s).
[[nodiscard]] sim::SimTime downtime_per_year(double availability);

/// Availability implied by total downtime over an observation window.
[[nodiscard]] double availability_from_downtime(sim::SimTime downtime,
                                                sim::SimTime window);

/// "Six nines" etc. -> fraction; nines may be fractional (3.5 nines).
[[nodiscard]] double nines_to_availability(double nines);
[[nodiscard]] double availability_to_nines(double availability);

/// Expected availability of a failover system: failures arrive at
/// `failures_per_year`, each causing `outage_per_failure` of downtime
/// (detection + switchover, or repair when unprotected).
[[nodiscard]] double failover_availability(double failures_per_year,
                                           sim::SimTime outage_per_failure);

/// One row of the availability comparison table.
struct AvailabilityRow {
  std::string mechanism;
  sim::SimTime outage_per_failure;
  double availability_at_12_per_year;  ///< one failure a month
  double yearly_downtime_seconds;
  bool meets_six_nines;
};

/// Builds the comparison row for a mechanism with measured outage.
[[nodiscard]] AvailabilityRow make_row(std::string mechanism,
                                       sim::SimTime outage_per_failure,
                                       double failures_per_year = 12.0);

}  // namespace steelnet::core
