// steelnet::core -- fixed-width tables and ASCII plots for benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace steelnet::core {

/// A simple console table: set headers, add rows, print. Column widths
/// auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Numeric formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC 4180-ish CSV emission for benches that want machine-readable
/// output next to the console table (same add_row interface as TextTable,
/// so one row-building loop can feed both).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Quotes a cell if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an empirical CDF as an ASCII plot (x = value, y = quantile).
/// `width` x `height` characters.
[[nodiscard]] std::string ascii_cdf(const sim::SampleSet& samples,
                                    const std::string& x_label,
                                    std::size_t width = 64,
                                    std::size_t height = 16);

/// Renders several labelled series' key quantiles side by side -- the
/// textual stand-in for a multi-line CDF figure.
struct QuantileSeries {
  std::string label;
  const sim::SampleSet* samples;
};
[[nodiscard]] std::string quantile_table(
    const std::vector<QuantileSeries>& series, const std::string& unit);

/// Renders a time series (e.g. packets per 50 ms) as an ASCII sparkline
/// block plot.
[[nodiscard]] std::string ascii_timeseries(
    const std::vector<sim::TimeSeriesBinner::Bin>& bins,
    const std::string& label, std::size_t height = 8);

}  // namespace steelnet::core
