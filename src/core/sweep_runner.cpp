#include "core/sweep_runner.hpp"

#include <algorithm>

namespace steelnet::core {

std::size_t effective_jobs(std::size_t requested, std::size_t tasks) {
  return effective_jobs(requested, tasks, 1);
}

std::size_t effective_jobs(std::size_t requested, std::size_t tasks,
                           std::size_t shards_per_task) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t shards = std::max<std::size_t>(shards_per_task, 1);
  const std::size_t jobs =
      requested != 0 ? requested : std::max<std::size_t>(1, hw / shards);
  return std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(
                                                     tasks, 1)));
}

std::vector<std::size_t> weighted_order(
    const std::vector<std::uint64_t>& weights) {
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&weights](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

}  // namespace steelnet::core
