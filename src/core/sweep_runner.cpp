#include "core/sweep_runner.hpp"

#include <algorithm>

namespace steelnet::core {

std::size_t effective_jobs(std::size_t requested, std::size_t tasks) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs = requested != 0 ? requested : hw;
  return std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(
                                                     tasks, 1)));
}

}  // namespace steelnet::core
