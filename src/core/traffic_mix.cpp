#include "core/traffic_mix.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace steelnet::core {

using namespace steelnet::sim::literals;

std::string to_string(FlowClass c) {
  switch (c) {
    case FlowClass::kMice: return "mice";
    case FlowClass::kMedium: return "medium";
    case FlowClass::kElephant: return "elephant";
    case FlowClass::kDeterministicMicroflow:
      return "deterministic-microflow";
  }
  return "?";
}

FlowClass classify(const FlowStats& flow,
                   const ClassifierThresholds& thresholds) {
  if (flow.periodic && flow.open_ended &&
      flow.mean_packet_bytes <= thresholds.micro_packet_max_bytes) {
    return FlowClass::kDeterministicMicroflow;
  }
  return classify_bytes_only(flow, thresholds);
}

FlowClass classify_bytes_only(const FlowStats& flow,
                              const ClassifierThresholds& thresholds) {
  if (flow.total_bytes <= thresholds.mice_max_bytes) return FlowClass::kMice;
  if (flow.total_bytes >= thresholds.elephant_min_bytes) {
    return FlowClass::kElephant;
  }
  return FlowClass::kMedium;
}

std::vector<FlowStats> generate_mix(const MixSpec& spec) {
  sim::Rng rng{spec.seed};
  std::vector<FlowStats> flows;
  flows.reserve(spec.mice + spec.medium + spec.elephants + spec.vplc_flows);

  for (std::size_t i = 0; i < spec.mice; ++i) {
    FlowStats f;
    f.total_bytes = static_cast<std::uint64_t>(rng.uniform(200, 10.0 * 1024));
    f.duration = sim::SimTime{
        static_cast<std::int64_t>(rng.uniform(0.2e6, 5e6))};  // 0.2-5 ms
    f.mean_packet_bytes = 800;
    flows.push_back(f);
  }
  for (std::size_t i = 0; i < spec.medium; ++i) {
    FlowStats f;
    f.total_bytes = static_cast<std::uint64_t>(
        rng.lognormal(std::log(0.5 * 1024 * 1024), 0.4));
    f.duration = sim::SimTime{
        static_cast<std::int64_t>(rng.uniform(5e6, 200e6))};
    f.mean_packet_bytes = 1400;
    flows.push_back(f);
  }
  for (std::size_t i = 0; i < spec.elephants; ++i) {
    FlowStats f;
    f.total_bytes = static_cast<std::uint64_t>(
        rng.uniform(1.0, 40.0) * 1024 * 1024 * 1024);
    f.duration = sim::SimTime{
        static_cast<std::int64_t>(rng.uniform(10e9, 300e9))};
    f.mean_packet_bytes = 1500;
    flows.push_back(f);
  }
  for (std::size_t i = 0; i < spec.vplc_flows; ++i) {
    // §2.3: cycles < 2 ms with 20-50 B payloads, or 1-10 ms with up to
    // 250 B; running for the whole observation window and beyond.
    FlowStats f;
    const bool fast = rng.bernoulli(0.5);
    const double cycle_s =
        fast ? rng.uniform(250e-6, 2e-3) : rng.uniform(1e-3, 10e-3);
    f.mean_packet_bytes = static_cast<std::size_t>(
        fast ? rng.uniform(20, 50) : rng.uniform(40, 250));
    const double packets = spec.observation.seconds() / cycle_s;
    f.total_bytes =
        static_cast<std::uint64_t>(packets * double(f.mean_packet_bytes));
    f.duration = spec.observation;
    f.periodic = true;
    f.open_ended = true;
    flows.push_back(f);
  }
  return flows;
}

std::vector<MixRow> tabulate_mix(const std::vector<FlowStats>& flows,
                                 const ClassifierThresholds& thresholds) {
  std::map<FlowClass, MixRow> rows;
  double total_bytes = 0;
  for (const auto& f : flows) total_bytes += double(f.total_bytes);

  for (const auto& f : flows) {
    const FlowClass c = classify(f, thresholds);
    MixRow& row = rows[c];
    row.klass = to_string(c);
    ++row.count;
    row.share_of_bytes += double(f.total_bytes);
    if (classify_bytes_only(f, thresholds) != c) {
      ++row.misclassified_by_bytes_only;
    }
  }
  std::vector<MixRow> out;
  for (auto& [c, row] : rows) {
    (void)c;
    row.share_of_flows = flows.empty()
                             ? 0
                             : double(row.count) / double(flows.size());
    row.share_of_bytes =
        total_bytes == 0 ? 0 : row.share_of_bytes / total_bytes;
    out.push_back(row);
  }
  return out;
}

}  // namespace steelnet::core
