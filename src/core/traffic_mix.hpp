// steelnet::core -- the §2.3 flow taxonomy.
//
// Data-center flows split into mice / medium / elephant; vPLCs add "a new
// type of flow ... cyclic, with the transmission of small packets, strict
// deterministic timing requirements, and never-ending."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace steelnet::core {

enum class FlowClass : std::uint8_t {
  kMice,      ///< short, latency-sensitive, <~10 KB [48, 114]
  kMedium,    ///< ~0.5 MB [48]
  kElephant,  ///< > 1 GB [48]
  kDeterministicMicroflow,  ///< the vPLC class: cyclic, tiny, endless
};

[[nodiscard]] std::string to_string(FlowClass c);

/// Observable properties of one flow.
struct FlowStats {
  std::uint64_t total_bytes = 0;
  sim::SimTime duration;
  std::size_t mean_packet_bytes = 0;
  bool periodic = false;   ///< fixed inter-packet cadence
  bool open_ended = false; ///< still running at observation end
};

struct ClassifierThresholds {
  std::uint64_t mice_max_bytes = 10 * 1024;            // [114]
  std::uint64_t elephant_min_bytes = 1024ull * 1024 * 1024;  // [48]
  std::size_t micro_packet_max_bytes = 250;  ///< §2.3 payload ceiling
};

/// Classifies a flow; deterministic microflows are recognized by the
/// combination small-periodic-open-ended regardless of accumulated bytes
/// (a never-ending flow eventually exceeds any byte threshold -- exactly
/// why the classic taxonomy misfiles it).
[[nodiscard]] FlowClass classify(const FlowStats& flow,
                                 const ClassifierThresholds& thresholds = {});

/// What the classic (bytes-only) taxonomy would have said.
[[nodiscard]] FlowClass classify_bytes_only(
    const FlowStats& flow, const ClassifierThresholds& thresholds = {});

/// Synthesis of a mixed DC + vPLC workload for the Table bench.
struct MixSpec {
  std::size_t mice = 700;
  std::size_t medium = 200;
  std::size_t elephants = 20;
  std::size_t vplc_flows = 80;
  sim::SimTime observation = sim::seconds(3600);
  std::uint64_t seed = 7;
};

[[nodiscard]] std::vector<FlowStats> generate_mix(const MixSpec& spec);

struct MixRow {
  std::string klass;
  std::size_t count = 0;
  double share_of_flows = 0;
  double share_of_bytes = 0;
  std::size_t misclassified_by_bytes_only = 0;
};

/// Classifies a workload and tabulates it, including how many flows the
/// bytes-only taxonomy puts in the wrong class. Custom thresholds let
/// scaled-down measured workloads (flowmon's in-network observation of a
/// short window) use proportionally scaled class boundaries.
[[nodiscard]] std::vector<MixRow> tabulate_mix(
    const std::vector<FlowStats>& flows,
    const ClassifierThresholds& thresholds = {});

}  // namespace steelnet::core
