#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace steelnet::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << "| " << cells[i]
         << std::string(widths[i] - cells[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::print(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string ascii_cdf(const sim::SampleSet& samples,
                      const std::string& x_label, std::size_t width,
                      std::size_t height) {
  std::ostringstream os;
  if (samples.empty()) return "(no samples)\n";
  const double lo = samples.min();
  const double hi = samples.max();
  const double span = hi > lo ? hi - lo : 1.0;

  // grid[y][x], y = 0 is the top (P = 1).
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& pt : samples.cdf(width * 2)) {
    auto x = static_cast<std::size_t>((pt.value - lo) / span *
                                      double(width - 1));
    auto y = static_cast<std::size_t>((1.0 - pt.cum_prob) *
                                      double(height - 1));
    x = std::min(x, width - 1);
    y = std::min(y, height - 1);
    grid[y][x] = '*';
  }
  os << "P(X<=x)\n";
  for (std::size_t y = 0; y < height; ++y) {
    const double p = 1.0 - double(y) / double(height - 1);
    char lbl[16];
    std::snprintf(lbl, sizeof lbl, "%4.2f |", p);
    os << lbl << grid[y] << '\n';
  }
  os << "      " << std::string(width, '-') << '\n';
  char foot[160];
  std::snprintf(foot, sizeof foot, "      %.3g%*s%.3g  (%s)\n", lo,
                int(width) - 6, "", hi, x_label.c_str());
  os << foot;
  return os.str();
}

std::string quantile_table(const std::vector<QuantileSeries>& series,
                           const std::string& unit) {
  TextTable table({"series", "n", "min (" + unit + ")", "p50 (" + unit + ")",
                   "p90 (" + unit + ")", "p99 (" + unit + ")",
                   "p99.9 (" + unit + ")", "max (" + unit + ")"});
  for (const auto& s : series) {
    if (s.samples == nullptr || s.samples->empty()) {
      table.add_row({s.label, "0"});
      continue;
    }
    table.add_row({s.label, std::to_string(s.samples->count()),
                   TextTable::num(s.samples->min()),
                   TextTable::num(s.samples->percentile(50)),
                   TextTable::num(s.samples->percentile(90)),
                   TextTable::num(s.samples->percentile(99)),
                   TextTable::num(s.samples->percentile(99.9)),
                   TextTable::num(s.samples->max())});
  }
  return table.to_string();
}

std::string ascii_timeseries(
    const std::vector<sim::TimeSeriesBinner::Bin>& bins,
    const std::string& label, std::size_t height) {
  std::ostringstream os;
  if (bins.empty()) return "(no data)\n";
  double peak = 0;
  for (const auto& b : bins) peak = std::max(peak, b.value);
  if (peak <= 0) peak = 1;
  os << label << " (peak " << TextTable::num(peak, 1) << ")\n";
  for (std::size_t y = 0; y < height; ++y) {
    const double threshold = peak * double(height - y) / double(height);
    std::string row;
    row.reserve(bins.size());
    for (const auto& b : bins) {
      row += b.value + 1e-12 >= threshold ? '#' : ' ';
    }
    os << row << '\n';
  }
  os << std::string(bins.size(), '-') << '\n';
  os << "0" << std::string(bins.size() > 10 ? bins.size() - 10 : 1, ' ')
     << TextTable::num(bins.back().start.seconds() +
                           (bins.size() > 1
                                ? (bins[1].start - bins[0].start).seconds()
                                : 0.0),
                       2)
     << "s\n";
  return os.str();
}

}  // namespace steelnet::core
