// steelnet::core -- the parallel seed-sweep engine.
//
// Every headline artifact in this repo (the tab_faults fault matrix, the
// ablation sweeps, the 64-seed property sweeps) is a loop of fully
// independent seeded single-threaded simulations. SweepRunner fans those
// runs out across a fixed-size worker pool and hands the results back in
// task order, so any aggregate built from them is byte-identical to the
// sequential loop regardless of worker count or OS scheduling:
//
//   * each task must own every piece of mutable state it touches (its own
//     Simulator/Network/ObsHub/FaultPlane; RNG streams derived from its
//     seed) -- workers share nothing but the atomic task counter,
//   * results land in slot-per-task storage; the caller reads the slots
//     in task order, which is exactly the sequential order,
//   * a throwing task never takes down the sweep or hangs a worker: the
//     exception is captured as that slot's error while every other task
//     completes normally.
//
// jobs == 1 never spawns a thread: tasks run inline on the calling
// thread, preserving the exact historical single-threaded behaviour.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace steelnet::core {

/// Worker count for `requested` jobs over `tasks` tasks: 0 means one
/// worker per hardware thread, and never more workers than tasks.
[[nodiscard]] std::size_t effective_jobs(std::size_t requested,
                                         std::size_t tasks);

/// Worker count when every task itself runs `shards_per_task` worker
/// threads (a sharded simulation per seed): the hardware budget is
/// divided by the per-task thread count before the usual clamping, so
/// `jobs x shards` never oversubscribes the machine by design. An
/// explicit `requested` value is still honored as given -- the caller
/// asked for it -- only the `requested == 0` default is divided.
[[nodiscard]] std::size_t effective_jobs(std::size_t requested,
                                         std::size_t tasks,
                                         std::size_t shards_per_task);

/// One task's outcome: a value, or the what() of the exception it threw.
template <typename R>
struct SweepSlot {
  std::optional<R> value;
  std::string error;
  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Dispatch order for run_weighted: task indices sorted by (weight desc,
/// index asc) -- the sweep-level LPT rule, so the heaviest task starts
/// first instead of possibly landing last and stretching the sweep tail.
/// Equal weights yield exactly 0..n-1, the classic dispatch order.
[[nodiscard]] std::vector<std::size_t> weighted_order(
    const std::vector<std::uint64_t>& weights);

class SweepRunner {
 public:
  /// `jobs == 0` (the default) means one worker per hardware thread.
  /// `shards_per_task` declares how many worker threads each task spawns
  /// internally (1 = the classic single-threaded task); the default job
  /// count shrinks accordingly so the pool never oversubscribes.
  explicit SweepRunner(std::size_t jobs = 0, std::size_t shards_per_task = 1)
      : jobs_(jobs), shards_per_task_(std::max<std::size_t>(
                         shards_per_task, 1)) {}

  [[nodiscard]] std::size_t jobs() const { return jobs_; }
  [[nodiscard]] std::size_t shards_per_task() const {
    return shards_per_task_;
  }

  /// Runs fn(0) .. fn(tasks-1) across the pool and returns slot-per-task
  /// results in task order. `fn` is invoked concurrently from multiple
  /// threads when jobs > 1, so it must not touch shared mutable state.
  template <typename Fn>
  [[nodiscard]] auto run(std::size_t tasks, Fn&& fn) const
      -> std::vector<SweepSlot<std::invoke_result_t<Fn&, std::size_t>>> {
    std::vector<std::size_t> order(tasks);
    for (std::size_t i = 0; i < tasks; ++i) order[i] = i;
    return run_ordered(order, fn);
  }

  /// run(), but tasks are *dispatched* heaviest-first (weighted_order) so
  /// the pool's tail is bounded by the heaviest task, not by whichever
  /// task happened to start last -- the sweep-level counterpart of the
  /// kernel's LPT partitioner, for sweeps whose tasks have known uneven
  /// cost (e.g. scenarios with different fault counts). Results are still
  /// slot-per-task in task order, so every aggregate built from the slots
  /// is byte-identical to run(); only wall clock changes.
  template <typename Fn>
  [[nodiscard]] auto run_weighted(const std::vector<std::uint64_t>& weights,
                                  Fn&& fn) const
      -> std::vector<SweepSlot<std::invoke_result_t<Fn&, std::size_t>>> {
    return run_ordered(weighted_order(weights), fn);
  }

 private:
  template <typename Fn>
  [[nodiscard]] auto run_ordered(const std::vector<std::size_t>& order,
                                 Fn& fn) const
      -> std::vector<SweepSlot<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    const std::size_t tasks = order.size();
    std::vector<SweepSlot<R>> slots(tasks);
    auto run_one = [&fn, &slots](std::size_t i) {
      try {
        slots[i].value.emplace(fn(i));
      } catch (const std::exception& e) {
        slots[i].error = e.what();
      } catch (...) {
        slots[i].error = "unknown exception";
      }
    };
    const std::size_t workers = effective_jobs(jobs_, tasks,
                                               shards_per_task_);
    if (workers <= 1) {
      for (std::size_t i = 0; i < tasks; ++i) run_one(order[i]);
      return slots;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < tasks; i = next.fetch_add(1, std::memory_order_relaxed)) {
        run_one(order[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    return slots;
  }

  std::size_t jobs_;
  std::size_t shards_per_task_;
};

}  // namespace steelnet::core
