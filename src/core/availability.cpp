#include "core/availability.hpp"

#include <cmath>
#include <stdexcept>

namespace steelnet::core {

sim::SimTime downtime_per_year(double availability) {
  if (availability < 0.0 || availability > 1.0) {
    throw std::invalid_argument("downtime_per_year: availability range");
  }
  return sim::SimTime{static_cast<std::int64_t>(
      (1.0 - availability) * kSecondsPerYear * 1e9)};
}

double availability_from_downtime(sim::SimTime downtime,
                                  sim::SimTime window) {
  if (window <= sim::SimTime::zero()) {
    throw std::invalid_argument("availability_from_downtime: empty window");
  }
  const double frac = downtime.seconds() / window.seconds();
  return frac >= 1.0 ? 0.0 : 1.0 - frac;
}

double nines_to_availability(double nines) {
  return 1.0 - std::pow(10.0, -nines);
}

double availability_to_nines(double availability) {
  if (availability >= 1.0) return 16.0;  // beyond double resolution
  if (availability <= 0.0) return 0.0;
  return -std::log10(1.0 - availability);
}

double failover_availability(double failures_per_year,
                             sim::SimTime outage_per_failure) {
  if (failures_per_year < 0) {
    throw std::invalid_argument("failover_availability: negative rate");
  }
  const double yearly_downtime =
      failures_per_year * outage_per_failure.seconds();
  if (yearly_downtime >= kSecondsPerYear) return 0.0;
  return 1.0 - yearly_downtime / kSecondsPerYear;
}

AvailabilityRow make_row(std::string mechanism,
                         sim::SimTime outage_per_failure,
                         double failures_per_year) {
  AvailabilityRow row;
  row.mechanism = std::move(mechanism);
  row.outage_per_failure = outage_per_failure;
  row.availability_at_12_per_year =
      failover_availability(failures_per_year, outage_per_failure);
  row.yearly_downtime_seconds =
      failures_per_year * outage_per_failure.seconds();
  row.meets_six_nines =
      row.availability_at_12_per_year >= nines_to_availability(6.0);
  return row;
}

}  // namespace steelnet::core
