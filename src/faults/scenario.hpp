// steelnet::faults -- fault scenario description.
//
// A FaultScenario is a seed plus a list of timed/probabilistic fault
// specs -- the complete, reproducible description of everything that
// goes wrong in one run. Scenarios are plain data: they can be built in
// code, generated from a seed, or parsed from a small line-oriented text
// format (one fault per line, `key=value` fields), so experiments can be
// checked into a repo and replayed bit-identically.
//
//   name loss-burst
//   seed 42
//   loss link=v1:0 at=1s dur=10ms p=1.0
//   flap link=v1:0 at=1s down=10ms period=20ms count=5
//   crash node=v1 at=1s dur=500ms
//
// The FaultPlane consumes a scenario via FaultPlane::schedule, resolving
// node names against the attached Network and turning every spec into
// deterministic simulator events.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace steelnet::faults {

enum class FaultKind : std::uint8_t {
  kLinkDown,   ///< link hard-down for a window (both directions)
  kLinkFlap,   ///< `count` down/up cycles of `period`, down for `duration`
  kLoss,       ///< per-frame loss with `probability` during the window
  kCorrupt,    ///< per-frame single-bit corruption with `probability`
  kDuplicate,  ///< per-frame duplication with `probability`
  kReorder,    ///< per-frame delayed re-enqueue (+`delay`) with `probability`
  kJitter,     ///< uniform [0, `delay`] added to every frame's arrival
  kNodeCrash,  ///< node NIC dies (and its process stops, via handler)
  kNodeStop,   ///< process stops gracefully; the NIC stays up (silence)
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One fault, bound to a link endpoint (`node`:`port`) or a node.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDown;
  std::string node;        ///< endpoint / target node name
  net::PortId port = 0;    ///< link faults: the endpoint's port
  sim::SimTime at;         ///< onset
  sim::SimTime duration;   ///< window (zero = permanent); flap: down time
  double probability = 0;  ///< loss/corrupt/duplicate/reorder
  sim::SimTime delay;      ///< jitter bound / reorder extra delay
  std::uint32_t count = 0; ///< flap cycles
  sim::SimTime period;     ///< flap cycle period

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

struct FaultScenario {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool operator==(const FaultScenario&) const = default;

  /// Renders the scenario in the parseable text format (exact round-trip:
  /// parse(to_text()) == *this).
  [[nodiscard]] std::string to_text() const;

  /// Parses the text format; throws sim::SimError on malformed input.
  [[nodiscard]] static FaultScenario parse(std::string_view text);
};

/// Parses a duration like "10ms", "500us", "1s", "250ns"; throws
/// sim::SimError on anything else.
[[nodiscard]] sim::SimTime parse_duration(std::string_view text);
/// Exact textual duration with the largest unit that divides it evenly.
[[nodiscard]] std::string format_duration(sim::SimTime t);

}  // namespace steelnet::faults
