// steelnet::faults -- the seed-sweep harness.
//
// ScenarioRunner stands up the canonical InstaPLC high-availability
// testbed (one sdn match-action switch; an I/O device on port 0; primary
// and secondary vPLC hosts on ports 1 and 2), attaches a FaultPlane and
// the observability plane, runs one FaultScenario to a horizon, and
// returns everything the invariant checks need:
//
//   * frame conservation (injected == delivered + dropped-by-cause,
//     residual must be 0),
//   * no delivery after a kill (frames created by a crashed node after
//     the crash never arrive anywhere),
//   * switchover latency bounded by watchdog-cycles x cycle-time,
//   * byte-identical obs exports per (seed, scenario) -- the fingerprints.
//
// tests/faults sweeps this over >= 64 random scenarios; bench/tab_faults
// turns the same outcomes into the fault-matrix table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sweep_runner.hpp"
#include "faults/fault_plane.hpp"
#include "faults/scenario.hpp"

namespace steelnet::faults {

struct RunnerOptions {
  sim::SimTime horizon = sim::seconds(3);
  /// When the secondary vPLC connects (the primary connects at t=0).
  sim::SimTime secondary_connect_at = sim::milliseconds(100);
  /// Silent I/O cycles before the in-network monitor switches over.
  std::uint16_t switchover_cycles = 3;
  /// PROFINET I/O cycle of both vPLCs and the device.
  sim::SimTime io_cycle = sim::milliseconds(2);
  /// Attach an ObsHub and export metrics/trace fingerprints.
  bool with_obs = true;
  /// Keep the full Prometheus/Chrome-trace text in the outcome (tests
  /// that diff exports byte-for-byte; costs memory).
  bool keep_exports = false;
};

/// Upper bound on detection + switchover latency: the monitor needs
/// `switchover_cycles` fully silent I/O cycles and ticks every half
/// cycle, so latency <= (switchover_cycles + 1) * io_cycle.
[[nodiscard]] sim::SimTime switchover_bound(const RunnerOptions& opts);

struct ScenarioOutcome {
  std::string scenario;
  std::uint64_t seed = 0;

  // InstaPLC behaviour.
  bool switched_over = false;
  sim::SimTime switchover_at;       ///< zero when no switchover happened
  sim::SimTime switchover_latency;  ///< switchover_at - primary last seen
  sim::SimTime max_output_gap;      ///< worst gap in valid device outputs
  std::uint64_t device_watchdog_trips = 0;
  std::uint64_t post_kill_deliveries = 0;  ///< must be 0
  bool secondary_running = false;
  bool twin_synced = false;

  // Ledger.
  net::NetworkCounters net;
  FaultCounters faults;
  std::int64_t residual = 0;  ///< conservation residual; must be 0

  // Obs export fingerprints (FNV-1a over the exact bytes); 0 without obs.
  std::uint64_t metrics_fp = 0;
  std::uint64_t trace_fp = 0;
  std::string metrics_prom;  ///< only with RunnerOptions::keep_exports
  std::string trace_json;    ///< only with RunnerOptions::keep_exports

  /// One hash over every determinism-relevant field above -- two runs of
  /// the same (seed, scenario) must collide exactly.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions opts = {}) : opts_(opts) {}

  /// Builds a fresh testbed, injects `scenario`, runs to the horizon.
  ///
  /// Reentrant: every piece of mutable state (simulator, network, fault
  /// plane, obs hub, probes) lives on this call's stack and RNG streams
  /// are derived from the scenario seed, so concurrent run() calls on
  /// the same runner share nothing and replay byte-identically.
  [[nodiscard]] ScenarioOutcome run(const FaultScenario& scenario) const;

  /// Runs every scenario through a core::SweepRunner worker pool (`jobs`
  /// semantics as there; 1 = inline sequential loop, 0 = hardware
  /// concurrency). Slots come back in scenario order, so aggregates are
  /// independent of worker count; a throwing run surfaces as that slot's
  /// error instead of killing the sweep.
  [[nodiscard]] std::vector<core::SweepSlot<ScenarioOutcome>> run_sweep(
      const std::vector<FaultScenario>& scenarios, std::size_t jobs = 1) const;

  [[nodiscard]] const RunnerOptions& options() const { return opts_; }

 private:
  RunnerOptions opts_;
};

// --- canonical scenarios (the tab_faults fault matrix) ----------------------
/// Primary vPLC process goes silent at 1s; its NIC stays up.
[[nodiscard]] FaultScenario silent_primary_scenario(std::uint64_t seed);
/// 100% loss on the primary's link for 10ms starting at 1s.
[[nodiscard]] FaultScenario loss_burst_scenario(std::uint64_t seed);
/// Primary link flaps 3x (10ms down / 20ms period) starting at 1s.
[[nodiscard]] FaultScenario link_flap_scenario(std::uint64_t seed);
/// Primary vPLC host crashes hard at 1s (NIC dead, queues purged).
[[nodiscard]] FaultScenario primary_crash_scenario(std::uint64_t seed);
/// One 3ms flap -- shorter than the 6ms watchdog window; must NOT
/// trigger a switchover.
[[nodiscard]] FaultScenario short_flap_scenario(std::uint64_t seed);
/// The four fault-matrix scenarios, in tab_faults row order.
[[nodiscard]] std::vector<FaultScenario> canonical_scenarios(
    std::uint64_t seed);

/// A property-test scenario: 1-3 random fault specs (kinds, targets,
/// windows, probabilities) drawn deterministically from `seed`.
[[nodiscard]] FaultScenario random_scenario(std::uint64_t seed);

/// FNV-1a 64 over arbitrary bytes (the export fingerprint primitive).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace steelnet::faults
