#include "faults/instaplc_testbed.hpp"

#include <algorithm>
#include <utility>

#include "obs/exporters.hpp"

namespace steelnet::faults {

InstaPlcTestbed::InstaPlcTestbed(sim::Simulator& sim, FaultScenario scenario,
                                 Config cfg)
    : sim_(sim),
      scenario_(std::move(scenario)),
      cfg_(std::move(cfg)),
      network_(sim) {
  const RunnerOptions& opts = cfg_.opts;

  sw_ = &network_.add_node<sdn::SdnSwitchNode>("sdn");
  dev_host_ = &network_.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  v1_host_ = &network_.add_node<net::HostNode>("v1", net::MacAddress{0x1});
  v2_host_ = &network_.add_node<net::HostNode>("v2", net::MacAddress{0x2});
  if (cfg_.before_device_connect) {
    cfg_.before_device_connect(dev_host_->id(), 0, sw_->id(), 0);
  }
  network_.connect(dev_host_->id(), 0, sw_->id(), 0, cfg_.device_link,
                   cfg_.device_backend);
  network_.connect(v1_host_->id(), 0, sw_->id(), 1);
  network_.connect(v2_host_->id(), 0, sw_->id(), 2);

  device_.emplace(*dev_host_);
  app_.emplace(*sw_,
               instaplc::InstaPlcConfig{
                   .device_port = 0,
                   .switchover_cycles = opts.switchover_cycles});

  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host_->mac();
  c1.cycle = opts.io_cycle;
  vplc1_.emplace(*v1_host_, c1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  vplc2_.emplace(*v2_host_, c2);

  plane_.emplace(network_, scenario_.seed);
  network_.set_faults(&*plane_);
  // A vPLC host's process dies and restarts with its node.
  plane_->set_crash_handler(v1_host_->id(), [this] { vplc1_->stop(); });
  plane_->set_restart_handler(v1_host_->id(), [this] { vplc1_->connect(); });
  plane_->set_crash_handler(v2_host_->id(), [this] { vplc2_->stop(); });
  plane_->set_restart_handler(v2_host_->id(), [this] { vplc2_->connect(); });

  if (opts.with_obs) {
    network_.set_obs(&hub_);
    network_.register_metrics(hub_);
    sw_->register_metrics(hub_);
    v1_host_->register_metrics(hub_);
    v2_host_->register_metrics(hub_);
    dev_host_->register_metrics(hub_);
    device_->register_metrics(hub_);
    vplc1_->register_metrics(hub_);
    vplc2_->register_metrics(hub_);
    app_->register_metrics(hub_, "sdn");
    plane_->register_metrics(hub_);
  }

  // Invariant probes.
  for (const FaultSpec& f : scenario_.faults) {
    if ((f.kind != FaultKind::kNodeCrash && f.kind != FaultKind::kNodeStop) ||
        f.duration != sim::SimTime::zero()) {
      continue;  // only permanent kills forbid later deliveries
    }
    const auto id = plane_->find_node(f.node);
    if (!id.has_value()) continue;
    if (*id == v1_host_->id()) post_kill_.watch(v1_host_->mac(), f.at);
    if (*id == v2_host_->id()) post_kill_.watch(v2_host_->mac(), f.at);
    if (*id == dev_host_->id()) post_kill_.watch(dev_host_->mac(), f.at);
  }
  dev_host_->add_frame_observer(&post_kill_);
  v1_host_->add_frame_observer(&post_kill_);
  v2_host_->add_frame_observer(&post_kill_);

  device_->set_output_handler(
      [this](const std::vector<std::uint8_t>&, bool run) {
        if (!run) return;
        const sim::SimTime now = sim_.now();
        if (saw_output_) {
          max_gap_ = std::max(max_gap_, now - last_valid_output_);
        }
        saw_output_ = true;
        last_valid_output_ = now;
      });

  app_->set_observer([this](instaplc::InstaPlcEvent ev, sim::SimTime at) {
    if (ev == instaplc::InstaPlcEvent::kPrimaryCyclic) {
      last_primary_seen_ = at;
    }
    if (ev == instaplc::InstaPlcEvent::kSwitchover) {
      switchover_latency_ =
          at - app_->stats().primary_last_seen.value_or(last_primary_seen_);
    }
  });
}

void InstaPlcTestbed::start() {
  if (started_) throw sim::SimError("InstaPlcTestbed: start() called twice");
  started_ = true;
  vplc1_->connect();
  sim_.schedule_at(cfg_.opts.secondary_connect_at,
                   [this] { vplc2_->connect(); });
  plane_->schedule(scenario_);
}

ScenarioOutcome InstaPlcTestbed::collect() {
  ScenarioOutcome out;
  out.scenario = scenario_.name;
  out.seed = scenario_.seed;
  out.switched_over = app_->switched_over();
  out.switchover_at =
      app_->stats().switchover_at.value_or(sim::SimTime::zero());
  out.switchover_latency = switchover_latency_;
  out.max_output_gap = max_gap_;
  out.device_watchdog_trips = device_->counters().watchdog_trips;
  out.post_kill_deliveries = post_kill_.violations();
  out.secondary_running =
      vplc2_->state() == profinet::ControllerState::kRunning;
  out.twin_synced = app_->twin().secondary_ar().has_value();
  out.net = network_.counters();
  out.faults = plane_->counters();
  out.residual = plane_->conservation_residual();
  if (cfg_.opts.with_obs) {
    const std::string prom = hub_.metrics().to_prometheus();
    const std::string trace = obs::chrome_trace_json(hub_.tracer());
    out.metrics_fp = fnv1a64(prom);
    out.trace_fp = fnv1a64(trace);
    if (cfg_.opts.keep_exports) {
      out.metrics_prom = prom;
      out.trace_json = trace;
    }
  }
  return out;
}

}  // namespace steelnet::faults
