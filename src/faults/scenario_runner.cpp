#include "faults/scenario_runner.hpp"

#include <algorithm>
#include <unordered_map>

#include "instaplc/instaplc.hpp"
#include "obs/exporters.hpp"
#include "obs/hub.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

/// Counts frames delivered anywhere whose source node was already dead
/// (permanently crashed/stopped) when the frame was created -- the
/// "no delivery after a kill" invariant.
class PostKillProbe final : public net::FrameObserver {
 public:
  void watch(net::MacAddress mac, sim::SimTime killed_at) {
    kills_[mac.bits()] = killed_at;
  }
  void on_frame(const net::Frame& frame, net::PortId in_port) override {
    (void)in_port;
    const auto it = kills_.find(frame.src.bits());
    if (it != kills_.end() && frame.created_at > it->second) ++violations_;
  }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  std::unordered_map<std::uint64_t, sim::SimTime> kills_;
  std::uint64_t violations_ = 0;
};

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x00000100000001b3ULL;
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

sim::SimTime switchover_bound(const RunnerOptions& opts) {
  return opts.io_cycle * (opts.switchover_cycles + 1);
}

std::uint64_t ScenarioOutcome::fingerprint() const {
  std::uint64_t h = fnv1a64(scenario);
  hash_u64(h, seed);
  hash_u64(h, switched_over ? 1 : 0);
  hash_u64(h, static_cast<std::uint64_t>(switchover_at.nanos()));
  hash_u64(h, static_cast<std::uint64_t>(switchover_latency.nanos()));
  hash_u64(h, static_cast<std::uint64_t>(max_output_gap.nanos()));
  hash_u64(h, device_watchdog_trips);
  hash_u64(h, post_kill_deliveries);
  hash_u64(h, secondary_running ? 1 : 0);
  hash_u64(h, twin_synced ? 1 : 0);
  hash_u64(h, net.frames_offered);
  hash_u64(h, net.frames_delivered);
  hash_u64(h, net.frames_dropped_no_link);
  hash_u64(h, net.frames_in_flight);
  hash_u64(h, net.bytes_delivered);
  hash_u64(h, faults.dropped_link_down);
  hash_u64(h, faults.dropped_loss);
  hash_u64(h, faults.dropped_sender_down);
  hash_u64(h, faults.dropped_receiver_down);
  hash_u64(h, faults.suppressed_tx);
  hash_u64(h, faults.suppressed_rx);
  hash_u64(h, faults.corrupted);
  hash_u64(h, faults.duplicated);
  hash_u64(h, faults.reordered);
  hash_u64(h, faults.jittered);
  hash_u64(h, static_cast<std::uint64_t>(residual));
  hash_u64(h, metrics_fp);
  hash_u64(h, trace_fp);
  return h;
}

ScenarioOutcome ScenarioRunner::run(const FaultScenario& scenario) const {
  sim::Simulator simulator;
  net::Network network{simulator};
  obs::ObsHub hub;

  auto& sw = network.add_node<sdn::SdnSwitchNode>("sdn");
  auto& dev_host = network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  auto& v1_host = network.add_node<net::HostNode>("v1", net::MacAddress{0x1});
  auto& v2_host = network.add_node<net::HostNode>("v2", net::MacAddress{0x2});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1_host.id(), 0, sw.id(), 1);
  network.connect(v2_host.id(), 0, sw.id(), 2);

  profinet::IoDevice device{dev_host};
  instaplc::InstaPlcApp app{
      sw, {.device_port = 0, .switchover_cycles = opts_.switchover_cycles}};

  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  c1.cycle = opts_.io_cycle;
  profinet::CyclicController vplc1{v1_host, c1};
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2{v2_host, c2};

  FaultPlane plane{network, scenario.seed};
  network.set_faults(&plane);
  // A vPLC host's process dies and restarts with its node.
  plane.set_crash_handler(v1_host.id(), [&] { vplc1.stop(); });
  plane.set_restart_handler(v1_host.id(), [&] { vplc1.connect(); });
  plane.set_crash_handler(v2_host.id(), [&] { vplc2.stop(); });
  plane.set_restart_handler(v2_host.id(), [&] { vplc2.connect(); });

  if (opts_.with_obs) {
    network.set_obs(&hub);
    network.register_metrics(hub);
    sw.register_metrics(hub);
    v1_host.register_metrics(hub);
    v2_host.register_metrics(hub);
    dev_host.register_metrics(hub);
    device.register_metrics(hub);
    vplc1.register_metrics(hub);
    vplc2.register_metrics(hub);
    app.register_metrics(hub, "sdn");
    plane.register_metrics(hub);
  }

  // Invariant probes.
  PostKillProbe post_kill;
  for (const FaultSpec& f : scenario.faults) {
    if ((f.kind != FaultKind::kNodeCrash && f.kind != FaultKind::kNodeStop) ||
        f.duration != sim::SimTime::zero()) {
      continue;  // only permanent kills forbid later deliveries
    }
    const auto id = plane.find_node(f.node);
    if (!id.has_value()) continue;
    if (*id == v1_host.id()) post_kill.watch(v1_host.mac(), f.at);
    if (*id == v2_host.id()) post_kill.watch(v2_host.mac(), f.at);
    if (*id == dev_host.id()) post_kill.watch(dev_host.mac(), f.at);
  }
  dev_host.add_frame_observer(&post_kill);
  v1_host.add_frame_observer(&post_kill);
  v2_host.add_frame_observer(&post_kill);

  sim::SimTime last_valid_output = sim::SimTime::zero();
  sim::SimTime max_gap = sim::SimTime::zero();
  bool saw_output = false;
  device.set_output_handler([&](const std::vector<std::uint8_t>&, bool run) {
    if (!run) return;
    const sim::SimTime now = simulator.now();
    if (saw_output) max_gap = std::max(max_gap, now - last_valid_output);
    saw_output = true;
    last_valid_output = now;
  });

  sim::SimTime last_primary_seen = sim::SimTime::zero();
  sim::SimTime switchover_latency = sim::SimTime::zero();
  app.set_observer([&](instaplc::InstaPlcEvent ev, sim::SimTime at) {
    if (ev == instaplc::InstaPlcEvent::kPrimaryCyclic) last_primary_seen = at;
    if (ev == instaplc::InstaPlcEvent::kSwitchover) {
      switchover_latency =
          at - app.stats().primary_last_seen.value_or(last_primary_seen);
    }
  });

  vplc1.connect();
  simulator.schedule_at(opts_.secondary_connect_at, [&] { vplc2.connect(); });
  plane.schedule(scenario);
  simulator.run_until(opts_.horizon);

  ScenarioOutcome out;
  out.scenario = scenario.name;
  out.seed = scenario.seed;
  out.switched_over = app.switched_over();
  out.switchover_at = app.stats().switchover_at.value_or(sim::SimTime::zero());
  out.switchover_latency = switchover_latency;
  out.max_output_gap = max_gap;
  out.device_watchdog_trips = device.counters().watchdog_trips;
  out.post_kill_deliveries = post_kill.violations();
  out.secondary_running =
      vplc2.state() == profinet::ControllerState::kRunning;
  out.twin_synced = app.twin().secondary_ar().has_value();
  out.net = network.counters();
  out.faults = plane.counters();
  out.residual = plane.conservation_residual();
  if (opts_.with_obs) {
    const std::string prom = hub.metrics().to_prometheus();
    const std::string trace = obs::chrome_trace_json(hub.tracer());
    out.metrics_fp = fnv1a64(prom);
    out.trace_fp = fnv1a64(trace);
    if (opts_.keep_exports) {
      out.metrics_prom = prom;
      out.trace_json = trace;
    }
  }
  return out;
}

std::vector<core::SweepSlot<ScenarioOutcome>> ScenarioRunner::run_sweep(
    const std::vector<FaultScenario>& scenarios, std::size_t jobs) const {
  return core::SweepRunner{jobs}.run(
      scenarios.size(), [&](std::size_t i) { return run(scenarios[i]); });
}

// --- canonical scenarios ----------------------------------------------------

FaultScenario silent_primary_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "silent_primary";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kNodeStop;
  f.node = "v1";
  f.at = sim::seconds(1);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario loss_burst_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "loss_burst";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kLoss;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(10);
  f.probability = 1.0;
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario link_flap_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "link_flap";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kLinkFlap;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(10);
  f.count = 3;
  f.period = sim::milliseconds(20);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario primary_crash_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "primary_crash";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kNodeCrash;
  f.node = "v1";
  f.at = sim::seconds(1);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario short_flap_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "short_flap";
  sc.seed = seed;
  // 3ms outage < switchover_cycles (3) x io_cycle (2ms) = 6ms window:
  // cyclic frames resume before the monitor sees three silent cycles.
  FaultSpec f;
  f.kind = FaultKind::kLinkFlap;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(3);
  f.count = 1;
  f.period = sim::milliseconds(10);
  sc.faults.push_back(std::move(f));
  return sc;
}

std::vector<FaultScenario> canonical_scenarios(std::uint64_t seed) {
  return {silent_primary_scenario(seed), loss_burst_scenario(seed),
          link_flap_scenario(seed), primary_crash_scenario(seed)};
}

FaultScenario random_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "random-" + std::to_string(seed);
  sc.seed = seed;
  sim::Rng rng = sim::Rng(seed).derive("faults/scenario");
  const char* kLinkNodes[3] = {"dev", "v1", "v2"};
  const char* kProcNodes[2] = {"v1", "v2"};
  const std::int64_t n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    FaultSpec f;
    f.at = sim::microseconds(rng.uniform_int(200'000, 2'000'000));
    const std::int64_t kind = rng.uniform_int(0, 8);
    switch (kind) {
      case 0:
        f.kind = FaultKind::kLinkDown;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 40));
        break;
      case 1: {
        f.kind = FaultKind::kLinkFlap;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.count = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
        const std::int64_t period_us = rng.uniform_int(5'000, 40'000);
        f.period = sim::microseconds(period_us);
        f.duration =
            sim::microseconds(rng.uniform_int(1'000, period_us - 1'000));
        break;
      }
      case 2:
        f.kind = FaultKind::kLoss;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.05, 1.0);
        break;
      case 3:
        f.kind = FaultKind::kCorrupt;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        break;
      case 4:
        f.kind = FaultKind::kDuplicate;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        break;
      case 5:
        f.kind = FaultKind::kReorder;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        f.delay = sim::microseconds(rng.uniform_int(50, 1'000));
        break;
      case 6:
        f.kind = FaultKind::kJitter;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.delay = sim::microseconds(rng.uniform_int(10, 500));
        break;
      case 7:
        f.kind = FaultKind::kNodeCrash;
        f.node = kProcNodes[rng.uniform_int(0, 1)];
        if (rng.bernoulli(0.5)) {
          f.duration = sim::milliseconds(rng.uniform_int(50, 500));
        }
        break;
      default:
        f.kind = FaultKind::kNodeStop;
        f.node = kProcNodes[rng.uniform_int(0, 1)];
        if (rng.bernoulli(0.5)) {
          f.duration = sim::milliseconds(rng.uniform_int(50, 500));
        }
        break;
    }
    sc.faults.push_back(std::move(f));
  }
  return sc;
}

}  // namespace steelnet::faults
