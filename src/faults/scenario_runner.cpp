#include "faults/scenario_runner.hpp"

#include "faults/instaplc_testbed.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x00000100000001b3ULL;
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

sim::SimTime switchover_bound(const RunnerOptions& opts) {
  return opts.io_cycle * (opts.switchover_cycles + 1);
}

std::uint64_t ScenarioOutcome::fingerprint() const {
  std::uint64_t h = fnv1a64(scenario);
  hash_u64(h, seed);
  hash_u64(h, switched_over ? 1 : 0);
  hash_u64(h, static_cast<std::uint64_t>(switchover_at.nanos()));
  hash_u64(h, static_cast<std::uint64_t>(switchover_latency.nanos()));
  hash_u64(h, static_cast<std::uint64_t>(max_output_gap.nanos()));
  hash_u64(h, device_watchdog_trips);
  hash_u64(h, post_kill_deliveries);
  hash_u64(h, secondary_running ? 1 : 0);
  hash_u64(h, twin_synced ? 1 : 0);
  hash_u64(h, net.frames_offered);
  hash_u64(h, net.frames_delivered);
  hash_u64(h, net.frames_dropped_no_link);
  hash_u64(h, net.frames_in_flight);
  hash_u64(h, net.bytes_delivered);
  hash_u64(h, faults.dropped_link_down);
  hash_u64(h, faults.dropped_loss);
  hash_u64(h, faults.dropped_sender_down);
  hash_u64(h, faults.dropped_receiver_down);
  hash_u64(h, faults.suppressed_tx);
  hash_u64(h, faults.suppressed_rx);
  hash_u64(h, faults.corrupted);
  hash_u64(h, faults.duplicated);
  hash_u64(h, faults.reordered);
  hash_u64(h, faults.jittered);
  hash_u64(h, static_cast<std::uint64_t>(residual));
  hash_u64(h, metrics_fp);
  hash_u64(h, trace_fp);
  return h;
}

ScenarioOutcome ScenarioRunner::run(const FaultScenario& scenario) const {
  sim::Simulator simulator;
  InstaPlcTestbed testbed{simulator, scenario, {.opts = opts_}};
  testbed.start();
  simulator.run_until(opts_.horizon);
  return testbed.collect();
}

std::vector<core::SweepSlot<ScenarioOutcome>> ScenarioRunner::run_sweep(
    const std::vector<FaultScenario>& scenarios, std::size_t jobs) const {
  // Heaviest-first dispatch: a scenario's fault count is a cheap proxy
  // for its cost, and LPT dispatch keeps a fat scenario from landing
  // last and stretching the sweep tail. Slot order (and therefore every
  // aggregate) is unchanged.
  std::vector<std::uint64_t> weights;
  weights.reserve(scenarios.size());
  for (const FaultScenario& sc : scenarios) {
    weights.push_back(sc.faults.size() + 1);
  }
  return core::SweepRunner{jobs}.run_weighted(
      weights, [&](std::size_t i) { return run(scenarios[i]); });
}

// --- canonical scenarios ----------------------------------------------------

FaultScenario silent_primary_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "silent_primary";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kNodeStop;
  f.node = "v1";
  f.at = sim::seconds(1);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario loss_burst_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "loss_burst";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kLoss;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(10);
  f.probability = 1.0;
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario link_flap_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "link_flap";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kLinkFlap;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(10);
  f.count = 3;
  f.period = sim::milliseconds(20);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario primary_crash_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "primary_crash";
  sc.seed = seed;
  FaultSpec f;
  f.kind = FaultKind::kNodeCrash;
  f.node = "v1";
  f.at = sim::seconds(1);
  sc.faults.push_back(std::move(f));
  return sc;
}

FaultScenario short_flap_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "short_flap";
  sc.seed = seed;
  // 3ms outage < switchover_cycles (3) x io_cycle (2ms) = 6ms window:
  // cyclic frames resume before the monitor sees three silent cycles.
  FaultSpec f;
  f.kind = FaultKind::kLinkFlap;
  f.node = "v1";
  f.port = 0;
  f.at = sim::seconds(1);
  f.duration = sim::milliseconds(3);
  f.count = 1;
  f.period = sim::milliseconds(10);
  sc.faults.push_back(std::move(f));
  return sc;
}

std::vector<FaultScenario> canonical_scenarios(std::uint64_t seed) {
  return {silent_primary_scenario(seed), loss_burst_scenario(seed),
          link_flap_scenario(seed), primary_crash_scenario(seed)};
}

FaultScenario random_scenario(std::uint64_t seed) {
  FaultScenario sc;
  sc.name = "random-" + std::to_string(seed);
  sc.seed = seed;
  sim::Rng rng = sim::Rng(seed).derive("faults/scenario");
  const char* kLinkNodes[3] = {"dev", "v1", "v2"};
  const char* kProcNodes[2] = {"v1", "v2"};
  const std::int64_t n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    FaultSpec f;
    f.at = sim::microseconds(rng.uniform_int(200'000, 2'000'000));
    const std::int64_t kind = rng.uniform_int(0, 8);
    switch (kind) {
      case 0:
        f.kind = FaultKind::kLinkDown;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 40));
        break;
      case 1: {
        f.kind = FaultKind::kLinkFlap;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.count = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
        const std::int64_t period_us = rng.uniform_int(5'000, 40'000);
        f.period = sim::microseconds(period_us);
        f.duration =
            sim::microseconds(rng.uniform_int(1'000, period_us - 1'000));
        break;
      }
      case 2:
        f.kind = FaultKind::kLoss;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.05, 1.0);
        break;
      case 3:
        f.kind = FaultKind::kCorrupt;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        break;
      case 4:
        f.kind = FaultKind::kDuplicate;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        break;
      case 5:
        f.kind = FaultKind::kReorder;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.probability = rng.uniform(0.01, 0.3);
        f.delay = sim::microseconds(rng.uniform_int(50, 1'000));
        break;
      case 6:
        f.kind = FaultKind::kJitter;
        f.node = kLinkNodes[rng.uniform_int(0, 2)];
        f.duration = sim::milliseconds(rng.uniform_int(1, 300));
        f.delay = sim::microseconds(rng.uniform_int(10, 500));
        break;
      case 7:
        f.kind = FaultKind::kNodeCrash;
        f.node = kProcNodes[rng.uniform_int(0, 1)];
        if (rng.bernoulli(0.5)) {
          f.duration = sim::milliseconds(rng.uniform_int(50, 500));
        }
        break;
      default:
        f.kind = FaultKind::kNodeStop;
        f.node = kProcNodes[rng.uniform_int(0, 1)];
        if (rng.bernoulli(0.5)) {
          f.duration = sim::milliseconds(rng.uniform_int(50, 500));
        }
        break;
    }
    sc.faults.push_back(std::move(f));
  }
  return sc;
}

}  // namespace steelnet::faults
