// steelnet::faults -- the canonical InstaPLC high-availability testbed
// as a reusable component.
//
// Extracted from ScenarioRunner::run so workloads other than the seed
// sweep can stand the same testbed up against an external simulator --
// most importantly the radio floor (net::run_radio_floor), which builds
// one testbed per sharded cell with a LossyRadioBackend injected on the
// device link. Construction order, obs registration order and RNG stream
// derivations are exactly the pre-extraction ScenarioRunner sequence,
// which is what keeps the wired golden fingerprints byte-identical.
//
// Lifecycle: construct against a simulator, call start() once (connects
// the primary, schedules the secondary and the fault scenario), drive the
// simulator (run_until or a sharded cell's execution), then collect().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "faults/fault_plane.hpp"
#include "faults/scenario.hpp"
#include "faults/scenario_runner.hpp"
#include "instaplc/instaplc.hpp"
#include "obs/hub.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"

namespace steelnet::faults {

class InstaPlcTestbed {
 public:
  struct Config {
    RunnerOptions opts{};
    /// Physical parameters of the device <-> switch link.
    net::LinkParams device_link{};
    /// Link driver for the device link; nullptr = the network's built-in
    /// wired backend (byte-identical to the pre-backend testbed).
    net::LinkBackend* device_backend = nullptr;
    /// Invoked after the nodes exist but before the device link connects
    /// -- the hook a radio backend uses to bind its station to the final
    /// (node, port) endpoints.
    std::function<void(net::NodeId dev_host, net::PortId dev_port,
                       net::NodeId sw, net::PortId sw_port)>
        before_device_connect;
  };

  InstaPlcTestbed(sim::Simulator& sim, FaultScenario scenario, Config cfg);

  /// Connects the primary vPLC, schedules the secondary and the fault
  /// scenario. Call exactly once, before driving the simulator.
  void start();

  /// Reads every outcome field (counters, invariants, obs fingerprints).
  /// Valid any time after start(); normally called once the simulator
  /// reached the horizon.
  [[nodiscard]] ScenarioOutcome collect();

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] FaultPlane& plane() { return *plane_; }
  [[nodiscard]] obs::ObsHub& hub() { return hub_; }
  [[nodiscard]] const RunnerOptions& options() const { return cfg_.opts; }
  /// Time of the last valid (run-state) device output; zero + !saw_output
  /// when the device never produced one. The radio floor folds the dead
  /// tail (horizon - last output) into its degradation metric.
  [[nodiscard]] sim::SimTime last_valid_output() const {
    return last_valid_output_;
  }
  [[nodiscard]] bool saw_output() const { return saw_output_; }

 private:
  /// Counts frames delivered anywhere whose source node was already dead
  /// (permanently crashed/stopped) when the frame was created -- the
  /// "no delivery after a kill" invariant.
  class PostKillProbe final : public net::FrameObserver {
   public:
    void watch(net::MacAddress mac, sim::SimTime killed_at) {
      kills_[mac.bits()] = killed_at;
    }
    void on_frame(const net::Frame& frame, net::PortId in_port) override {
      (void)in_port;
      const auto it = kills_.find(frame.src.bits());
      if (it != kills_.end() && frame.created_at > it->second) ++violations_;
    }
    [[nodiscard]] std::uint64_t violations() const { return violations_; }

   private:
    std::unordered_map<std::uint64_t, sim::SimTime> kills_;
    std::uint64_t violations_ = 0;
  };

  sim::Simulator& sim_;
  FaultScenario scenario_;
  Config cfg_;

  net::Network network_;
  obs::ObsHub hub_;
  sdn::SdnSwitchNode* sw_ = nullptr;
  net::HostNode* dev_host_ = nullptr;
  net::HostNode* v1_host_ = nullptr;
  net::HostNode* v2_host_ = nullptr;
  std::optional<profinet::IoDevice> device_;
  std::optional<instaplc::InstaPlcApp> app_;
  std::optional<profinet::CyclicController> vplc1_;
  std::optional<profinet::CyclicController> vplc2_;
  std::optional<FaultPlane> plane_;
  PostKillProbe post_kill_;

  sim::SimTime last_valid_output_;
  sim::SimTime max_gap_;
  bool saw_output_ = false;
  sim::SimTime last_primary_seen_;
  sim::SimTime switchover_latency_;
  bool started_ = false;
};

}  // namespace steelnet::faults
