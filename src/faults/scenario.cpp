#include "faults/scenario.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr std::array<KindName, 9> kKindNames = {{
    {FaultKind::kLinkDown, "link_down"},
    {FaultKind::kLinkFlap, "flap"},
    {FaultKind::kLoss, "loss"},
    {FaultKind::kCorrupt, "corrupt"},
    {FaultKind::kDuplicate, "duplicate"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kJitter, "jitter"},
    {FaultKind::kNodeCrash, "crash"},
    {FaultKind::kNodeStop, "stop"},
}};

[[noreturn]] void fail(const std::string& what) { throw sim::SimError(what); }

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::int64_t parse_int(std::string_view text, std::string_view what) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("scenario: bad " + std::string(what) + " '" + std::string(text) +
         "'");
  }
  return v;
}

double parse_double(std::string_view text) {
  // from_chars<double> is not universally available; strtod on a bounded
  // copy keeps the parser locale-robust enough for "0.25"/"1".
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    fail("scenario: bad probability '" + buf + "'");
  }
  return v;
}

std::string format_double(double v) {
  // Shortest representation that parses back to exactly v, so scenario
  // text round-trips randomly drawn probabilities bit-for-bit.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

const char* to_string(FaultKind k) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

sim::SimTime parse_duration(std::string_view text) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0)) {
    ++digits;
  }
  if (digits == 0) fail("scenario: bad duration '" + std::string(text) + "'");
  const std::int64_t value = parse_int(text.substr(0, digits), "duration");
  const std::string_view unit = text.substr(digits);
  if (unit == "ns") return sim::nanoseconds(value);
  if (unit == "us") return sim::microseconds(value);
  if (unit == "ms") return sim::milliseconds(value);
  if (unit == "s") return sim::seconds(value);
  fail("scenario: bad duration unit '" + std::string(text) + "'");
}

std::string format_duration(sim::SimTime t) {
  const std::int64_t ns = t.nanos();
  if (ns % 1'000'000'000 == 0) return std::to_string(ns / 1'000'000'000) + "s";
  if (ns % 1'000'000 == 0) return std::to_string(ns / 1'000'000) + "ms";
  if (ns % 1'000 == 0) return std::to_string(ns / 1'000) + "us";
  return std::to_string(ns) + "ns";
}

std::string FaultScenario::to_text() const {
  std::string out;
  out += "name " + name + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  for (const FaultSpec& f : faults) {
    out += to_string(f.kind);
    const bool link_fault =
        f.kind != FaultKind::kNodeCrash && f.kind != FaultKind::kNodeStop;
    if (link_fault) {
      out += " link=" + f.node + ":" + std::to_string(f.port);
    } else {
      out += " node=" + f.node;
    }
    out += " at=" + format_duration(f.at);
    if (f.kind == FaultKind::kLinkFlap) {
      out += " down=" + format_duration(f.duration);
      out += " period=" + format_duration(f.period);
      out += " count=" + std::to_string(f.count);
    } else if (f.duration != sim::SimTime::zero()) {
      out += " dur=" + format_duration(f.duration);
    }
    if (f.probability != 0) out += " p=" + format_double(f.probability);
    if (f.delay != sim::SimTime::zero()) {
      out += (f.kind == FaultKind::kJitter ? " max=" : " delay=") +
             format_duration(f.delay);
    }
    out += "\n";
  }
  return out;
}

FaultScenario FaultScenario::parse(std::string_view text) {
  FaultScenario sc;
  sc.faults.clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    const auto tokens = split_ws(line);
    if (tokens.empty() || tokens[0].front() == '#') continue;
    const std::string_view head = tokens[0];
    if (head == "name") {
      if (tokens.size() != 2) fail("scenario: name takes one token");
      sc.name = std::string(tokens[1]);
      continue;
    }
    if (head == "seed") {
      if (tokens.size() != 2) fail("scenario: seed takes one token");
      sc.seed = static_cast<std::uint64_t>(parse_int(tokens[1], "seed"));
      continue;
    }
    FaultSpec spec;
    bool known = false;
    for (const KindName& kn : kKindNames) {
      if (head == kn.name) {
        spec.kind = kn.kind;
        known = true;
        break;
      }
    }
    if (!known) fail("scenario: unknown fault kind '" + std::string(head) + "'");
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string_view tok = tokens[i];
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        fail("scenario: expected key=value, got '" + std::string(tok) + "'");
      }
      const std::string_view k = tok.substr(0, eq);
      const std::string_view v = tok.substr(eq + 1);
      if (k == "link") {
        const std::size_t colon = v.rfind(':');
        if (colon == std::string_view::npos) {
          fail("scenario: link needs node:port, got '" + std::string(v) + "'");
        }
        spec.node = std::string(v.substr(0, colon));
        spec.port = static_cast<net::PortId>(
            parse_int(v.substr(colon + 1), "port"));
      } else if (k == "node") {
        spec.node = std::string(v);
      } else if (k == "at") {
        spec.at = parse_duration(v);
      } else if (k == "dur" || k == "down") {
        spec.duration = parse_duration(v);
      } else if (k == "p") {
        spec.probability = parse_double(v);
      } else if (k == "delay" || k == "max") {
        spec.delay = parse_duration(v);
      } else if (k == "count") {
        spec.count = static_cast<std::uint32_t>(parse_int(v, "count"));
      } else if (k == "period") {
        spec.period = parse_duration(v);
      } else {
        fail("scenario: unknown key '" + std::string(k) + "'");
      }
    }
    if (spec.node.empty()) fail("scenario: fault needs a link= or node=");
    sc.faults.push_back(std::move(spec));
  }
  return sc;
}

}  // namespace steelnet::faults
