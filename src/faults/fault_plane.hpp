// steelnet::faults -- deterministic, sim-time-scheduled fault injection.
//
// The FaultPlane is the counterpart of the observability plane: an opt-in
// object attached to a Network via net::Network::set_faults. Detached,
// every hook site in the data path costs one pointer-null branch; attached,
// the plane decides the fate of every frame entering a wire (loss, bit
// corruption, duplication, reordering via delayed re-enqueue, added
// jitter), enforces link hard-down windows, and kills/restarts nodes.
//
// Everything the plane does is reproducible from a single seed: each fault
// category draws from its own named Rng stream (Rng::derive), so enabling
// corruption never perturbs the loss pattern, and the same seed + scenario
// replays byte-identically -- including the obs exports.
//
// Faults are described by a FaultScenario (scenario.hpp) and turned into
// simulator events by schedule(); tests can also drive the plane directly
// (set_link_down, crash_node, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "faults/scenario.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::faults {

/// Everything the plane did, by cause. The four dropped_* counters are
/// "wire drops": together with the Network's delivered/no-link/in-flight
/// counters they tile frames_offered (+ duplicated) exactly -- see
/// FaultPlane::conservation_residual.
struct FaultCounters {
  std::uint64_t dropped_link_down = 0;   ///< frame entered a downed link
  std::uint64_t dropped_loss = 0;        ///< random per-frame loss
  std::uint64_t dropped_sender_down = 0; ///< transmit() from a crashed node
  std::uint64_t dropped_receiver_down = 0;  ///< arrival at a crashed node
  std::uint64_t suppressed_tx = 0;  ///< sends/queued frames on a dead node
  std::uint64_t suppressed_rx = 0;  ///< handed to a dead node off-wire
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t jittered = 0;  ///< frames that crossed a jittered link
  std::uint64_t link_down_events = 0;
  std::uint64_t link_up_events = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t node_stops = 0;

  /// Frames removed from the wire by the plane (excludes pre-wire
  /// suppressions, which never reached transmit()).
  [[nodiscard]] std::uint64_t wire_drops() const {
    return dropped_link_down + dropped_loss + dropped_sender_down +
           dropped_receiver_down;
  }
};

/// Probabilistic behaviour of one *directed* channel (node, port). Link
/// hard-down state is kept separately and applied to both directions.
struct LinkFaultProfile {
  double loss = 0.0;       ///< per-frame drop probability
  double corrupt = 0.0;    ///< per-frame single-bit-flip probability
  double duplicate = 0.0;  ///< per-frame duplication probability
  double reorder = 0.0;    ///< per-frame delayed re-enqueue probability
  sim::SimTime reorder_delay;  ///< extra delay for reordered frames
  sim::SimTime jitter_max;     ///< uniform [0, jitter_max] per frame
};

/// One node-lifecycle transition, as seen by plane watchers (the
/// orchestration layer subscribes to these to keep its inventory and
/// per-rack crash accounting in step with the plane without claiming the
/// single per-node crash/restart handler slot).
struct NodeEvent {
  enum class Kind : std::uint8_t { kCrash, kStop, kRestart };
  net::NodeId node = 0;
  Kind kind = Kind::kCrash;
  /// Incarnation epoch *after* the transition (every crash/stop/restart
  /// bumps it).
  std::uint64_t epoch = 0;
  sim::SimTime at;
};

class FaultPlane final : public net::FaultInjector {
 public:
  /// Binds to `net` (callers still attach via net.set_faults(this)) and
  /// seeds the per-category fault streams.
  FaultPlane(net::Network& net, std::uint64_t seed);

  // --- scenario front door ------------------------------------------------
  /// Resolves node names against the network and schedules every spec as
  /// simulator events. Throws sim::SimError for unknown nodes. kNodeCrash
  /// and kNodeStop invoke the registered handlers so protocol stacks
  /// (vPLC processes) die and restart with their node.
  void schedule(const FaultScenario& scenario);

  // --- manual control (what schedule() composes) --------------------------
  /// Hard-down state of the full duplex link at (node, port); applied to
  /// both directions via the network's peer table. Idempotent.
  void set_link_down(net::NodeId node, net::PortId port, bool down);
  [[nodiscard]] bool link_is_down(net::NodeId node, net::PortId port) const;

  /// Mutable probabilistic profile of the *directed* channel out of
  /// (node, port).
  [[nodiscard]] LinkFaultProfile& profile(net::NodeId node, net::PortId port);
  /// Applies `p` to both directions of the duplex link at (node, port).
  void set_profile_symmetric(net::NodeId node, net::PortId port,
                             const LinkFaultProfile& p);

  /// NIC death: in-flight frames to the node are absorbed, its queues are
  /// purged, sends/receives are suppressed. Fires the crash handler.
  void crash_node(net::NodeId node);
  /// Brings a crashed node back (NIC only) and fires the restart handler.
  void restart_node(net::NodeId node);
  /// Graceful process stop: the NIC stays alive (the network still
  /// delivers frames) but the registered crash handler runs -- this is the
  /// "silent primary" case where only the application goes quiet.
  void stop_node(net::NodeId node);
  /// Process-level hooks run by crash_node/stop_node and restart_node.
  void set_crash_handler(net::NodeId node, std::function<void()> fn);
  void set_restart_handler(net::NodeId node, std::function<void()> fn);
  /// When the node is currently crashed: the crash time.
  [[nodiscard]] std::optional<sim::SimTime> crashed_at(net::NodeId node) const;

  /// Subscribes to every node-lifecycle transition (crash/stop/restart,
  /// with the post-transition epoch). Watchers are invoked in registration
  /// order, after the per-node handler -- any number may subscribe, so
  /// orchestration layers don't fight over the handler slots.
  void add_node_watcher(std::function<void(const NodeEvent&)> fn);

  /// Current incarnation epoch of `node` (0 until its first transition).
  [[nodiscard]] std::uint64_t incarnation(net::NodeId node) const;
  /// Restarts `node` only if its epoch still equals `epoch` -- the
  /// safe form for externally scheduled restarts (an orchestrator's
  /// "upgrade done, bring it back"): a crash or kill that lands in
  /// between bumps the epoch and vetoes the stale restart, so a node
  /// killed in a later epoch is never resurrected. Returns whether the
  /// restart happened.
  bool restart_node_if(net::NodeId node, std::uint64_t epoch);

  /// Node id by name, resolved against the bound network.
  [[nodiscard]] std::optional<net::NodeId> find_node(
      std::string_view name) const;

  // --- ledger -------------------------------------------------------------
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  /// Frame-conservation residual, valid at any instant:
  ///   (offered + duplicated) - (delivered + dropped_no_link
  ///                             + dropped_backend + wire_drops + in_flight)
  /// Zero means every injected fault is accounted for by exactly one
  /// drop-cause counter.
  [[nodiscard]] std::int64_t conservation_residual() const;
  /// Binds every fault counter under `{label}/faults/...`.
  void register_metrics(obs::ObsHub& hub,
                        const std::string& label = "faults") const;

  // --- net::FaultInjector -------------------------------------------------
  [[nodiscard]] bool node_alive(net::NodeId node) const override;
  TransitVerdict on_transit(net::NodeId node, net::PortId port,
                            net::Frame& frame, sim::SimTime now) override;
  void on_receiver_down(net::NodeId node, const net::Frame& frame,
                        sim::SimTime now) override;
  void on_tx_suppressed(net::NodeId node, const net::Frame& frame) override;
  void on_rx_suppressed(net::NodeId node, const net::Frame& frame) override;

 private:
  static std::uint64_t key(net::NodeId node, net::PortId port) {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }
  void schedule_one(const FaultSpec& spec);
  void notify_watchers(net::NodeId node, NodeEvent::Kind kind);
  net::NodeId resolve(const std::string& name) const;
  /// Sets the profile field selected by `kind` on both directions of the
  /// duplex link at (node, port).
  void apply_profile_field(net::NodeId node, net::PortId port, FaultKind kind,
                           double probability, sim::SimTime delay);

  net::Network& net_;
  FaultCounters counters_;
  // Independent named streams: adding one fault category to a scenario
  // never perturbs the draws of the others.
  sim::Rng loss_rng_;
  sim::Rng corrupt_rng_;
  sim::Rng duplicate_rng_;
  sim::Rng reorder_rng_;
  sim::Rng jitter_rng_;
  std::unordered_map<std::uint64_t, bool> link_down_;     // directed
  std::unordered_map<std::uint64_t, LinkFaultProfile> profiles_;  // directed
  std::unordered_map<net::NodeId, sim::SimTime> crashed_;
  /// Incarnation counter per node, bumped by every crash/stop/restart.
  /// Scheduled restarts fire only for their own incarnation, so a later
  /// (possibly permanent) kill supersedes an earlier spec's pod restart.
  std::unordered_map<net::NodeId, std::uint64_t> down_epoch_;
  std::unordered_map<net::NodeId, std::function<void()>> crash_handlers_;
  std::unordered_map<net::NodeId, std::function<void()>> restart_handlers_;
  std::vector<std::function<void(const NodeEvent&)>> watchers_;
};

}  // namespace steelnet::faults
