#include "faults/fault_plane.hpp"

#include "obs/hub.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {

FaultPlane::FaultPlane(net::Network& net, std::uint64_t seed)
    : net_(net),
      loss_rng_(sim::Rng(seed).derive("faults/loss")),
      corrupt_rng_(sim::Rng(seed).derive("faults/corrupt")),
      duplicate_rng_(sim::Rng(seed).derive("faults/duplicate")),
      reorder_rng_(sim::Rng(seed).derive("faults/reorder")),
      jitter_rng_(sim::Rng(seed).derive("faults/jitter")) {}

// --- manual control ---------------------------------------------------------

void FaultPlane::set_link_down(net::NodeId node, net::PortId port, bool down) {
  bool& state = link_down_[key(node, port)];
  if (state == down) return;  // idempotent: flap trains may overlap windows
  state = down;
  const auto peer = net_.peer(node, port);
  if (peer) {
    link_down_[key(peer->first, peer->second)] = down;
  }
  if (down) {
    ++counters_.link_down_events;
    // A frame caught mid-serialization by the hard-down is cut on the
    // wire: cancel its delivery and book it here, so it resolves to
    // exactly one ledger cause (it was only in_flight until now). The
    // idempotence guard above makes overlapping flap windows kill each
    // frame at most once.
    counters_.dropped_link_down +=
        net_.kill_in_flight(node, port, "link_down");
    if (peer) {
      counters_.dropped_link_down +=
          net_.kill_in_flight(peer->first, peer->second, "link_down");
    }
  } else {
    ++counters_.link_up_events;
  }
}

bool FaultPlane::link_is_down(net::NodeId node, net::PortId port) const {
  const auto it = link_down_.find(key(node, port));
  return it != link_down_.end() && it->second;
}

LinkFaultProfile& FaultPlane::profile(net::NodeId node, net::PortId port) {
  return profiles_[key(node, port)];
}

void FaultPlane::set_profile_symmetric(net::NodeId node, net::PortId port,
                                       const LinkFaultProfile& p) {
  profile(node, port) = p;
  if (const auto peer = net_.peer(node, port)) {
    profile(peer->first, peer->second) = p;
  }
}

void FaultPlane::crash_node(net::NodeId node) {
  // Every kill starts a new incarnation, superseding any pod restart
  // still pending from an earlier crash/stop spec.
  ++down_epoch_[node];
  if (crashed_.contains(node)) return;
  crashed_.emplace(node, net_.sim().now());
  ++counters_.node_crashes;
  if (const auto it = crash_handlers_.find(node);
      it != crash_handlers_.end() && it->second) {
    it->second();
  }
  notify_watchers(node, NodeEvent::Kind::kCrash);
}

void FaultPlane::restart_node(net::NodeId node) {
  ++down_epoch_[node];
  crashed_.erase(node);
  ++counters_.node_restarts;
  if (const auto it = restart_handlers_.find(node);
      it != restart_handlers_.end() && it->second) {
    it->second();
  }
  notify_watchers(node, NodeEvent::Kind::kRestart);
}

void FaultPlane::stop_node(net::NodeId node) {
  ++down_epoch_[node];
  ++counters_.node_stops;
  if (const auto it = crash_handlers_.find(node);
      it != crash_handlers_.end() && it->second) {
    it->second();
  }
  notify_watchers(node, NodeEvent::Kind::kStop);
}

void FaultPlane::add_node_watcher(std::function<void(const NodeEvent&)> fn) {
  watchers_.push_back(std::move(fn));
}

void FaultPlane::notify_watchers(net::NodeId node, NodeEvent::Kind kind) {
  if (watchers_.empty()) return;
  NodeEvent ev;
  ev.node = node;
  ev.kind = kind;
  ev.epoch = down_epoch_[node];
  ev.at = net_.sim().now();
  for (const auto& w : watchers_) w(ev);
}

std::uint64_t FaultPlane::incarnation(net::NodeId node) const {
  const auto it = down_epoch_.find(node);
  return it == down_epoch_.end() ? 0 : it->second;
}

bool FaultPlane::restart_node_if(net::NodeId node, std::uint64_t epoch) {
  if (down_epoch_[node] != epoch) return false;
  restart_node(node);
  return true;
}

void FaultPlane::set_crash_handler(net::NodeId node, std::function<void()> fn) {
  crash_handlers_[node] = std::move(fn);
}

void FaultPlane::set_restart_handler(net::NodeId node,
                                     std::function<void()> fn) {
  restart_handlers_[node] = std::move(fn);
}

std::optional<sim::SimTime> FaultPlane::crashed_at(net::NodeId node) const {
  const auto it = crashed_.find(node);
  if (it == crashed_.end()) return std::nullopt;
  return it->second;
}

std::optional<net::NodeId> FaultPlane::find_node(std::string_view name) const {
  for (net::NodeId id = 0; id < net_.node_count(); ++id) {
    if (net_.node(id).name() == name) return id;
  }
  return std::nullopt;
}

// --- scenario ---------------------------------------------------------------

net::NodeId FaultPlane::resolve(const std::string& name) const {
  const auto id = find_node(name);
  if (!id.has_value()) {
    throw sim::SimError("FaultPlane: unknown node '" + name + "'");
  }
  return *id;
}

void FaultPlane::apply_profile_field(net::NodeId node, net::PortId port,
                                     FaultKind kind, double probability,
                                     sim::SimTime delay) {
  const auto apply = [&](LinkFaultProfile& p) {
    switch (kind) {
      case FaultKind::kLoss:
        p.loss = probability;
        break;
      case FaultKind::kCorrupt:
        p.corrupt = probability;
        break;
      case FaultKind::kDuplicate:
        p.duplicate = probability;
        break;
      case FaultKind::kReorder:
        p.reorder = probability;
        p.reorder_delay = delay;
        break;
      case FaultKind::kJitter:
        p.jitter_max = delay;
        break;
      default:
        break;
    }
  };
  apply(profile(node, port));
  if (const auto peer = net_.peer(node, port)) {
    apply(profile(peer->first, peer->second));
  }
}

void FaultPlane::schedule_one(const FaultSpec& spec) {
  sim::Simulator& sim = net_.sim();
  const net::NodeId node = resolve(spec.node);
  const net::PortId port = spec.port;
  switch (spec.kind) {
    case FaultKind::kLinkDown:
      sim.schedule_at(spec.at,
                      [this, node, port] { set_link_down(node, port, true); });
      if (spec.duration != sim::SimTime::zero()) {
        sim.schedule_at(spec.at + spec.duration, [this, node, port] {
          set_link_down(node, port, false);
        });
      }
      break;
    case FaultKind::kLinkFlap:
      for (std::uint32_t i = 0; i < spec.count; ++i) {
        const sim::SimTime t = spec.at + spec.period * i;
        sim.schedule_at(t,
                        [this, node, port] { set_link_down(node, port, true); });
        sim.schedule_at(t + spec.duration, [this, node, port] {
          set_link_down(node, port, false);
        });
      }
      break;
    case FaultKind::kLoss:
    case FaultKind::kCorrupt:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kJitter:
      sim.schedule_at(spec.at, [this, node, port, kind = spec.kind,
                                p = spec.probability, d = spec.delay] {
        apply_profile_field(node, port, kind, p, d);
      });
      if (spec.duration != sim::SimTime::zero()) {
        sim.schedule_at(spec.at + spec.duration,
                        [this, node, port, kind = spec.kind] {
                          apply_profile_field(node, port, kind, 0.0,
                                              sim::SimTime::zero());
                        });
      }
      break;
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeStop: {
      const bool crash = spec.kind == FaultKind::kNodeCrash;
      sim.schedule_at(spec.at, [this, node, crash, dur = spec.duration] {
        if (crash) {
          crash_node(node);
        } else {
          stop_node(node);
        }
        if (dur == sim::SimTime::zero()) return;  // permanent kill
        // The restart belongs to this incarnation: a later overlapping
        // kill spec bumps the epoch and vetoes it, so a permanent kill
        // scheduled after us stays permanent.
        const std::uint64_t epoch = down_epoch_[node];
        net_.sim().schedule_in(dur, [this, node, epoch] {
          if (down_epoch_[node] == epoch) restart_node(node);
        });
      });
      break;
    }
  }
}

void FaultPlane::schedule(const FaultScenario& scenario) {
  for (const FaultSpec& spec : scenario.faults) schedule_one(spec);
}

// --- ledger -----------------------------------------------------------------

std::int64_t FaultPlane::conservation_residual() const {
  const net::NetworkCounters& c = net_.counters();
  const std::int64_t offered =
      static_cast<std::int64_t>(c.frames_offered + counters_.duplicated);
  const std::int64_t accounted = static_cast<std::int64_t>(
      c.frames_delivered + c.frames_dropped_no_link +
      c.frames_dropped_backend + counters_.wire_drops() + c.frames_in_flight);
  return offered - accounted;
}

void FaultPlane::register_metrics(obs::ObsHub& hub,
                                  const std::string& label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const auto bind = [&](const char* metric, const std::uint64_t* v) {
    reg.bind_counter({label, "faults", metric}, v);
  };
  bind("dropped_link_down", &counters_.dropped_link_down);
  bind("dropped_loss", &counters_.dropped_loss);
  bind("dropped_sender_down", &counters_.dropped_sender_down);
  bind("dropped_receiver_down", &counters_.dropped_receiver_down);
  bind("suppressed_tx", &counters_.suppressed_tx);
  bind("suppressed_rx", &counters_.suppressed_rx);
  bind("corrupted", &counters_.corrupted);
  bind("duplicated", &counters_.duplicated);
  bind("reordered", &counters_.reordered);
  bind("jittered", &counters_.jittered);
  bind("link_down_events", &counters_.link_down_events);
  bind("link_up_events", &counters_.link_up_events);
  bind("node_crashes", &counters_.node_crashes);
  bind("node_restarts", &counters_.node_restarts);
  bind("node_stops", &counters_.node_stops);
}

// --- net::FaultInjector -----------------------------------------------------

bool FaultPlane::node_alive(net::NodeId node) const {
  return !crashed_.contains(node);
}

FaultPlane::TransitVerdict FaultPlane::on_transit(net::NodeId node,
                                                  net::PortId port,
                                                  net::Frame& frame,
                                                  sim::SimTime now) {
  (void)now;
  TransitVerdict v;
  if (crashed_.contains(node)) {
    // Stale transmit from a crashed node (most paths suppress earlier).
    v.drop = true;
    v.cause = "sender_down";
    ++counters_.dropped_sender_down;
    return v;
  }
  if (link_is_down(node, port)) {
    v.drop = true;
    v.cause = "link_down";
    ++counters_.dropped_link_down;
    return v;
  }
  const auto it = profiles_.find(key(node, port));
  if (it == profiles_.end()) return v;
  const LinkFaultProfile& p = it->second;
  if (p.loss > 0 && loss_rng_.bernoulli(p.loss)) {
    v.drop = true;
    v.cause = "loss";
    ++counters_.dropped_loss;
    return v;
  }
  if (p.corrupt > 0 && corrupt_rng_.bernoulli(p.corrupt) &&
      !frame.payload.empty()) {
    const std::int64_t bit = corrupt_rng_.uniform_int(
        0, static_cast<std::int64_t>(frame.payload.size()) * 8 - 1);
    frame.payload[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    v.corrupted = true;
    ++counters_.corrupted;
  }
  if (p.duplicate > 0 && duplicate_rng_.bernoulli(p.duplicate)) {
    v.duplicate = true;
    ++counters_.duplicated;
  }
  if (p.reorder > 0 && reorder_rng_.bernoulli(p.reorder)) {
    // Reordering by delayed re-enqueue: this frame arrives reorder_delay
    // late, so frames serialized after it on the same link overtake it.
    v.reordered = true;
    v.extra_delay += p.reorder_delay;
    ++counters_.reordered;
  }
  if (p.jitter_max > sim::SimTime::zero()) {
    v.extra_delay +=
        sim::nanoseconds(jitter_rng_.uniform_int(0, p.jitter_max.nanos()));
    ++counters_.jittered;
  }
  return v;
}

void FaultPlane::on_receiver_down(net::NodeId node, const net::Frame& frame,
                                  sim::SimTime now) {
  (void)node;
  (void)frame;
  (void)now;
  ++counters_.dropped_receiver_down;
}

void FaultPlane::on_tx_suppressed(net::NodeId node, const net::Frame& frame) {
  (void)node;
  (void)frame;
  ++counters_.suppressed_tx;
}

void FaultPlane::on_rx_suppressed(net::NodeId node, const net::Frame& frame) {
  (void)node;
  (void)frame;
  ++counters_.suppressed_rx;
}

}  // namespace steelnet::faults
