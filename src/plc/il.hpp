// steelnet::plc -- an IEC 61131-3 Instruction List (IL) interpreter.
//
// The classic accumulator machine PLC programmers write: LD/AND/OR over
// bit addresses in the input (I), output (Q) and marker (M) areas, with
// TON timers and CTU counters as addressable blocks. One `scan()` is one
// PLC cycle: read-modify the process image exactly as a hardware PLC's
// program organization unit would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plc/function_blocks.hpp"

namespace steelnet::plc {

/// Addressable bit areas.
enum class Area : std::uint8_t { kInput, kOutput, kMarker, kTimer, kCounter };

enum class IlOp : std::uint8_t {
  kLd,    ///< acc = bit
  kLdn,   ///< acc = !bit
  kAnd,   ///< acc &= bit
  kAndn,  ///< acc &= !bit
  kOr,    ///< acc |= bit
  kOrn,   ///< acc |= !bit
  kXor,   ///< acc ^= bit
  kNot,   ///< acc = !acc
  kSt,    ///< bit = acc
  kStn,   ///< bit = !acc
  kSet,   ///< if (acc) bit = 1
  kRst,   ///< if (acc) bit = 0
  kTon,   ///< acc = timer[idx].update(acc); (preset from program)
  kCtu,   ///< acc = counter[idx].update(count=acc, reset=false)
  kCtuR,  ///< counter[idx].reset when acc
};

struct IlInsn {
  IlOp op;
  Area area = Area::kMarker;
  std::uint16_t index = 0;
  /// TON preset (ns) for kTon at first use; ignored otherwise.
  std::int64_t param = 0;
};

/// The process image an IL program operates on.
struct ProcessImage {
  std::vector<bool> inputs;   ///< I area
  std::vector<bool> outputs;  ///< Q area
  std::vector<bool> markers;  ///< M area

  explicit ProcessImage(std::size_t in = 64, std::size_t out = 64,
                        std::size_t mem = 64)
      : inputs(in, false), outputs(out, false), markers(mem, false) {}

  /// Packs output bits into bytes (for the cyclic frame) and unpacks
  /// input bytes into bits.
  void load_input_bytes(const std::vector<std::uint8_t>& bytes);
  [[nodiscard]] std::vector<std::uint8_t> output_bytes(
      std::size_t n_bytes) const;
};

/// A validated IL program plus its timer/counter instances.
class IlProgram {
 public:
  /// Validates addresses/structure; throws std::invalid_argument.
  IlProgram(std::string name, std::vector<IlInsn> insns,
            std::size_t image_bits = 64);

  /// Executes one scan against `image` at PLC time `now`.
  void scan(ProcessImage& image, sim::SimTime now);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return insns_.size(); }
  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  [[nodiscard]] const Ctu& counter(std::size_t idx) const {
    return counters_.at(idx);
  }

 private:
  std::string name_;
  std::vector<IlInsn> insns_;
  std::vector<Ton> timers_;
  std::vector<Ctu> counters_;
  std::uint64_t scans_ = 0;
};

}  // namespace steelnet::plc
