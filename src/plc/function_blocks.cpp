#include "plc/function_blocks.hpp"

namespace steelnet::plc {

bool Ton::update(bool in, sim::SimTime now) {
  if (!in) {
    running_ = false;
    q_ = false;
    return q_;
  }
  if (!running_) {
    running_ = true;
    started_ = now;
  }
  q_ = now - started_ >= preset_;
  return q_;
}

sim::SimTime Ton::elapsed(sim::SimTime now) const {
  if (!running_) return sim::SimTime::zero();
  return std::min(now - started_, preset_);
}

bool Tof::update(bool in, sim::SimTime now) {
  if (in) {
    q_ = true;
  } else {
    if (prev_in_) fell_at_ = now;
    if (q_ && now - fell_at_ >= preset_) q_ = false;
  }
  prev_in_ = in;
  return q_;
}

bool Ctu::update(bool count, bool reset) {
  if (reset) {
    value_ = 0;
  } else if (count && !prev_) {
    ++value_;
  }
  prev_ = count;
  return q();
}

double Pid::update(double setpoint, double actual, double dt) {
  const double error = setpoint - actual;
  const double p = gains_.kp * error;
  const double d =
      (first_ || dt <= 0) ? 0.0 : gains_.kd * (error - prev_error_) / dt;
  first_ = false;
  prev_error_ = error;

  // Tentative integral with anti-windup: only integrate when not
  // saturated in the direction of the error.
  double i_candidate = integral_ + gains_.ki * error * dt;
  double out = p + i_candidate + d;
  if (out > gains_.out_max) {
    out = gains_.out_max;
    if (gains_.ki * error > 0) i_candidate = integral_;  // freeze
  } else if (out < gains_.out_min) {
    out = gains_.out_min;
    if (gains_.ki * error < 0) i_candidate = integral_;
  }
  integral_ = i_candidate;
  return out;
}

void Pid::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  first_ = true;
}

}  // namespace steelnet::plc
