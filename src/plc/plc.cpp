#include "plc/plc.hpp"

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::plc {

Plc::Plc(profinet::CyclicController& controller, IlProgram program)
    : controller_(controller), program_(std::move(program)) {
  controller_.set_input_handler(
      [this](const std::vector<std::uint8_t>& bytes) {
        image_.load_input_bytes(bytes);
      });
  controller_.set_output_provider([this](std::size_t bytes) {
    // Scan at transmission time: the freshest inputs drive this cycle's
    // outputs (one-cycle latency, as on real hardware).
    program_.scan(image_, controller_.host().network().sim().now());
    return image_.output_bytes(bytes);
  });
}

void Plc::register_metrics(obs::ObsHub& hub,
                           const std::string& node_label) const {
  hub.metrics().bind_gauge({node_label, "plc", "scans"}, [this] {
    return static_cast<double>(program_.scans());
  });
  controller_.register_metrics(hub);
}

}  // namespace steelnet::plc
