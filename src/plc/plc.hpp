// steelnet::plc -- the PLC runtime: program + process image + cyclic bus.
//
// One Plc = one IL program scanned once per bus cycle: inputs arriving
// from the I/O device refresh the image; the output provider runs a scan
// and ships the Q area -- the classic read-execute-write loop, except the
// "backplane" is a (possibly virtualized, possibly jittery) network.
#pragma once

#include "plc/il.hpp"
#include "profinet/controller.hpp"

namespace steelnet::plc {

class Plc {
 public:
  /// Wires `program` into `controller`'s cyclic exchange. The controller
  /// must outlive the Plc.
  Plc(profinet::CyclicController& controller, IlProgram program);

  /// Starts connection establishment (and thereafter cyclic scanning).
  void start() { controller_.connect(); }
  void stop() { controller_.stop(); }

  [[nodiscard]] ProcessImage& image() { return image_; }
  [[nodiscard]] const ProcessImage& image() const { return image_; }
  [[nodiscard]] IlProgram& program() { return program_; }
  [[nodiscard]] profinet::CyclicController& controller() {
    return controller_;
  }
  [[nodiscard]] std::uint64_t scans() const { return program_.scans(); }

  /// Binds the scan count (gauge, read at snapshot time) under
  /// `<node_label>/plc/...` and the controller's profinet counters.
  void register_metrics(obs::ObsHub& hub, const std::string& node_label) const;

 private:
  profinet::CyclicController& controller_;
  IlProgram program_;
  ProcessImage image_;
};

}  // namespace steelnet::plc
