// steelnet::plc -- IEC 61131-3 standard function blocks.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace steelnet::plc {

/// TON: on-delay timer. Q rises `preset` after IN rises; falls with IN.
class Ton {
 public:
  explicit Ton(sim::SimTime preset) : preset_(preset) {}

  bool update(bool in, sim::SimTime now);

  [[nodiscard]] bool q() const { return q_; }
  [[nodiscard]] sim::SimTime elapsed(sim::SimTime now) const;
  [[nodiscard]] sim::SimTime preset() const { return preset_; }

 private:
  sim::SimTime preset_;
  sim::SimTime started_;
  bool running_ = false;
  bool q_ = false;
};

/// TOF: off-delay timer. Q falls `preset` after IN falls; rises with IN.
class Tof {
 public:
  explicit Tof(sim::SimTime preset) : preset_(preset) {}

  bool update(bool in, sim::SimTime now);
  [[nodiscard]] bool q() const { return q_; }

 private:
  sim::SimTime preset_;
  sim::SimTime fell_at_;
  bool prev_in_ = false;
  bool q_ = false;
};

/// CTU: up counter with reset. Q when count >= preset.
class Ctu {
 public:
  explicit Ctu(std::uint32_t preset) : preset_(preset) {}

  bool update(bool count, bool reset);
  [[nodiscard]] std::uint32_t value() const { return value_; }
  [[nodiscard]] bool q() const { return value_ >= preset_; }

 private:
  std::uint32_t preset_;
  std::uint32_t value_ = 0;
  bool prev_ = false;
};

/// R_TRIG: rising-edge detector.
class RTrig {
 public:
  bool update(bool in) {
    const bool q = in && !prev_;
    prev_ = in;
    return q;
  }

 private:
  bool prev_ = false;
};

/// Discrete PID with output clamping and anti-windup.
class Pid {
 public:
  struct Gains {
    double kp = 1.0;
    double ki = 0.0;
    double kd = 0.0;
    double out_min = 0.0;
    double out_max = 100.0;
  };
  explicit Pid(Gains gains) : gains_(gains) {}

  double update(double setpoint, double actual, double dt);
  void reset();

  [[nodiscard]] double integral() const { return integral_; }

 private:
  Gains gains_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool first_ = true;
};

}  // namespace steelnet::plc
