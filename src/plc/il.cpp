#include "plc/il.hpp"

#include <stdexcept>

namespace steelnet::plc {

void ProcessImage::load_input_bytes(const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::size_t byte = i / 8, bit = i % 8;
    inputs[i] = byte < bytes.size() && ((bytes[byte] >> bit) & 1);
  }
}

std::vector<std::uint8_t> ProcessImage::output_bytes(
    std::size_t n_bytes) const {
  std::vector<std::uint8_t> bytes(n_bytes, 0);
  for (std::size_t i = 0; i < outputs.size() && i / 8 < n_bytes; ++i) {
    if (outputs[i]) bytes[i / 8] |= std::uint8_t(1u << (i % 8));
  }
  return bytes;
}

IlProgram::IlProgram(std::string name, std::vector<IlInsn> insns,
                     std::size_t image_bits)
    : name_(std::move(name)), insns_(std::move(insns)) {
  if (insns_.empty()) throw std::invalid_argument("IL: empty program");
  std::size_t max_timer = 0, max_counter = 0;
  bool have_timer = false, have_counter = false;
  for (const auto& i : insns_) {
    switch (i.op) {
      case IlOp::kTon:
        have_timer = true;
        max_timer = std::max<std::size_t>(max_timer, i.index);
        if (i.param <= 0) throw std::invalid_argument("IL: TON needs preset");
        break;
      case IlOp::kCtu:
      case IlOp::kCtuR:
        have_counter = true;
        max_counter = std::max<std::size_t>(max_counter, i.index);
        if (i.op == IlOp::kCtu && i.param <= 0) {
          throw std::invalid_argument("IL: CTU needs preset");
        }
        break;
      case IlOp::kNot:
        break;
      default:
        if (i.index >= image_bits) {
          throw std::invalid_argument("IL: bit address out of range");
        }
        if (i.area == Area::kTimer || i.area == Area::kCounter) {
          // LD from T/C areas reads the block's Q.
          break;
        }
        break;
    }
    // Writes to the input area are a classic programming error.
    if ((i.op == IlOp::kSt || i.op == IlOp::kStn || i.op == IlOp::kSet ||
         i.op == IlOp::kRst) &&
        i.area == Area::kInput) {
      throw std::invalid_argument("IL: store to input area");
    }
  }
  if (have_timer) {
    for (std::size_t t = 0; t <= max_timer; ++t) {
      // Preset comes from the first kTon insn naming this timer.
      sim::SimTime preset = sim::milliseconds(1);
      for (const auto& i : insns_) {
        if (i.op == IlOp::kTon && i.index == t) {
          preset = sim::SimTime{i.param};
          break;
        }
      }
      timers_.emplace_back(preset);
    }
  }
  if (have_counter) {
    for (std::size_t c = 0; c <= max_counter; ++c) {
      std::uint32_t preset = 1;
      for (const auto& i : insns_) {
        if (i.op == IlOp::kCtu && i.index == c) {
          preset = static_cast<std::uint32_t>(i.param);
          break;
        }
      }
      counters_.emplace_back(preset);
    }
  }
}

void IlProgram::scan(ProcessImage& image, sim::SimTime now) {
  ++scans_;
  bool acc = false;
  auto bit = [&](Area area, std::size_t idx) -> bool {
    switch (area) {
      case Area::kInput: return image.inputs.at(idx);
      case Area::kOutput: return image.outputs.at(idx);
      case Area::kMarker: return image.markers.at(idx);
      case Area::kTimer: return timers_.at(idx).q();
      case Area::kCounter: return counters_.at(idx).q();
    }
    return false;
  };
  auto set_bit = [&](Area area, std::size_t idx, bool v) {
    switch (area) {
      case Area::kOutput: image.outputs.at(idx) = v; return;
      case Area::kMarker: image.markers.at(idx) = v; return;
      default:
        throw std::logic_error("IL: store to read-only area");
    }
  };

  for (const auto& i : insns_) {
    switch (i.op) {
      case IlOp::kLd: acc = bit(i.area, i.index); break;
      case IlOp::kLdn: acc = !bit(i.area, i.index); break;
      case IlOp::kAnd: acc = acc && bit(i.area, i.index); break;
      case IlOp::kAndn: acc = acc && !bit(i.area, i.index); break;
      case IlOp::kOr: acc = acc || bit(i.area, i.index); break;
      case IlOp::kOrn: acc = acc || !bit(i.area, i.index); break;
      case IlOp::kXor: acc = acc != bit(i.area, i.index); break;
      case IlOp::kNot: acc = !acc; break;
      case IlOp::kSt: set_bit(i.area, i.index, acc); break;
      case IlOp::kStn: set_bit(i.area, i.index, !acc); break;
      case IlOp::kSet:
        if (acc) set_bit(i.area, i.index, true);
        break;
      case IlOp::kRst:
        if (acc) set_bit(i.area, i.index, false);
        break;
      case IlOp::kTon:
        acc = timers_.at(i.index).update(acc, now);
        break;
      case IlOp::kCtu:
        acc = counters_.at(i.index).update(acc, false);
        break;
      case IlOp::kCtuR:
        if (acc) counters_.at(i.index).update(false, true);
        break;
    }
  }
}

}  // namespace steelnet::plc
