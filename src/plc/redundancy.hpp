// steelnet::plc -- the classical hardware high-availability baseline.
//
// §4: "Industrial automation achieves the strict service availability
// requirements ... by using redundant PLC pairs: one active primary and
// one passive secondary on standby. If the primary PLC fails, the
// secondary takes over, typically within 50 ms to 300 ms. Note that this
// setup requires special hardware settings such as dedicated links
// between the PLC pairs for synchronization and heartbeats."
//
// The dedicated sync link is modelled as a lossless out-of-band channel
// (simulator events), exactly the "special hardware" the paper contrasts
// with InstaPLC's link-free design.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "profinet/controller.hpp"

namespace steelnet::plc {

struct RedundancyConfig {
  sim::SimTime heartbeat = sim::milliseconds(10);
  /// Heartbeats missed before the standby declares the primary dead.
  std::size_t miss_threshold = 3;
  /// Role-change time after detection (state transfer, bumpless output
  /// alignment); vendors quote 50-300 ms.
  sim::SimTime switchover_delay = sim::milliseconds(100);
};

struct RedundancyStats {
  std::uint64_t heartbeats = 0;
  std::optional<sim::SimTime> primary_failed_at;
  std::optional<sim::SimTime> failure_detected_at;
  std::optional<sim::SimTime> switched_over_at;
};

/// Supervises a primary/secondary controller pair that target the same
/// I/O device with the same application relationship.
class RedundantPlcPair {
 public:
  /// Both controllers must be configured identically (same ar_id, device,
  /// cycle). `secondary` must be idle -- it is armed on takeover.
  RedundantPlcPair(profinet::CyclicController& primary,
                   profinet::CyclicController& secondary,
                   RedundancyConfig cfg, sim::Simulator& sim);

  /// Connects the primary and starts heartbeat supervision.
  void start();

  /// Kills the primary (controller stops transmitting, heartbeats cease)
  /// -- the failure injection used by the availability benches.
  void fail_primary();

  [[nodiscard]] const RedundancyStats& stats() const { return stats_; }
  [[nodiscard]] bool switched_over() const {
    return stats_.switched_over_at.has_value();
  }
  /// Detection + role change, when a switchover happened.
  [[nodiscard]] std::optional<sim::SimTime> takeover_latency() const;

 private:
  void tick();

  profinet::CyclicController& primary_;
  profinet::CyclicController& secondary_;
  RedundancyConfig cfg_;
  sim::Simulator& sim_;
  std::unique_ptr<sim::PeriodicTask> task_;
  sim::SimTime last_heartbeat_ = sim::SimTime::zero();
  std::uint16_t synced_cycle_counter_ = 0;
  bool primary_failed_ = false;
  bool takeover_scheduled_ = false;
  RedundancyStats stats_;
};

}  // namespace steelnet::plc
