#include "plc/redundancy.hpp"

#include "net/network.hpp"

namespace steelnet::plc {

RedundantPlcPair::RedundantPlcPair(profinet::CyclicController& primary,
                                   profinet::CyclicController& secondary,
                                   RedundancyConfig cfg, sim::Simulator& sim)
    : primary_(primary), secondary_(secondary), cfg_(cfg), sim_(sim) {}

void RedundantPlcPair::start() {
  primary_.connect();
  last_heartbeat_ = sim_.now();
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + cfg_.heartbeat, cfg_.heartbeat, [this] { tick(); });
}

void RedundantPlcPair::fail_primary() {
  primary_failed_ = true;
  stats_.primary_failed_at = sim_.now();
  primary_.stop();
}

void RedundantPlcPair::tick() {
  if (!primary_failed_) {
    // Sync over the dedicated link: heartbeat + replicated AR state.
    ++stats_.heartbeats;
    last_heartbeat_ = sim_.now();
    synced_cycle_counter_ =
        static_cast<std::uint16_t>(primary_.counters().cyclic_tx);
    return;
  }
  if (takeover_scheduled_) return;
  if (sim_.now() - last_heartbeat_ >
      cfg_.heartbeat * static_cast<std::int64_t>(cfg_.miss_threshold)) {
    stats_.failure_detected_at = sim_.now();
    takeover_scheduled_ = true;
    sim_.schedule_in(cfg_.switchover_delay, [this] {
      secondary_.adopt_running(
          static_cast<std::uint16_t>(synced_cycle_counter_ + 1));
      stats_.switched_over_at = sim_.now();
    });
  }
}

std::optional<sim::SimTime> RedundantPlcPair::takeover_latency() const {
  if (!stats_.switched_over_at || !stats_.primary_failed_at) {
    return std::nullopt;
  }
  return *stats_.switched_over_at - *stats_.primary_failed_at;
}

}  // namespace steelnet::plc
