// steelnet::ebpf -- a compact eBPF-like instruction set.
//
// This is a faithful *subset* of the real eBPF machine model: eleven
// 64-bit registers (r10 is the read-only frame pointer), a 512-byte
// stack, bounded programs verified before load, helper calls, and no
// floating point (the real verifier forbids it for determinism, as the
// paper notes in §3). Packet access is modelled with dedicated
// load/store opcodes carrying an immediate offset; the interpreter
// bounds-checks against the live frame, mirroring XDP's data/data_end
// discipline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace steelnet::ebpf {

enum class Op : std::uint8_t {
  // ALU64, dst op= src/imm
  kAddImm, kAddReg,
  kSubImm, kSubReg,
  kMulImm, kMulReg,
  kDivImm, kDivReg,   ///< division by zero yields 0, as in eBPF
  kAndImm, kAndReg,
  kOrImm,  kOrReg,
  kXorImm, kXorReg,
  kLshImm, kLshReg,
  kRshImm, kRshReg,
  kMovImm, kMovReg,
  kNeg,

  // Packet memory (offset = insn.off + value of src reg when src != 0xff)
  kLdPktB, kLdPktH, kLdPktW, kLdPktDw,   ///< dst = pkt[off..]
  kStPktB, kStPktH, kStPktW, kStPktDw,   ///< pkt[off..] = src

  // Stack memory, offsets are negative from r10 (frame pointer)
  kLdStackDw,  ///< dst = stack[off]
  kStStackDw,  ///< stack[off] = src

  kCall,  ///< helper call, imm = HelperId; args r1-r5, result r0
  kJa,    ///< unconditional forward jump
  kJeqImm, kJeqReg,
  kJneImm, kJneReg,
  kJgtImm, kJgtReg,
  kJgeImm, kJgeReg,
  kJltImm, kJltReg,
  kExit,
};

/// Helper functions available to programs (ids mirror the spirit, not the
/// numbering, of the kernel's).
enum class HelperId : std::int64_t {
  kKtimeGetNs = 1,     ///< r0 = current time (ns)
  kRingbufOutput = 2,  ///< r1 = stack offset (negative), r2 = length
  kMapLookup = 3,      ///< r1 = map id, r2 = key; r0 = value (0 if miss)
  kMapUpdate = 4,      ///< r1 = map id, r2 = key, r3 = value
  kGetPktLen = 5,      ///< r0 = payload length
};

struct Insn {
  Op op;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::int16_t off = 0;
  std::int64_t imm = 0;
};

/// XDP program verdicts (values as in the kernel ABI).
enum class XdpVerdict : std::int64_t {
  kAborted = 0,
  kDrop = 1,
  kPass = 2,
  kTx = 3,
};

constexpr std::size_t kNumRegisters = 11;  ///< r0..r10
constexpr std::uint8_t kFramePointer = 10;
constexpr std::size_t kStackBytes = 512;
constexpr std::size_t kMaxInsns = 4096;
constexpr std::size_t kMaxPacketOffset = 2048;

/// A named, verified-or-not program.
struct Program {
  std::string name;
  std::vector<Insn> insns;
};

[[nodiscard]] std::string to_string(Op op);
[[nodiscard]] std::string to_string(XdpVerdict v);

/// Disassembles one instruction (for error messages and dumps).
[[nodiscard]] std::string disassemble(const Insn& insn);

}  // namespace steelnet::ebpf
