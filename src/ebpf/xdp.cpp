#include "ebpf/xdp.hpp"

#include <utility>

namespace steelnet::ebpf {

XdpHook::XdpHook(Program program, CostParams cost, std::uint64_t seed)
    : vm_((verify_or_throw(program), std::move(program)), cost, seed) {}

net::NicAction XdpHook::process(net::Frame& frame, sim::SimTime now,
                                sim::SimTime& cost_out) {
  const RunResult r = vm_.run(frame, now);
  ++stats_.runs;
  cost_out = r.exec_time;
  if (observer_) observer_(r);
  switch (r.verdict) {
    case XdpVerdict::kPass:
      ++stats_.pass;
      return net::NicAction::kPass;
    case XdpVerdict::kDrop:
      ++stats_.drop;
      return net::NicAction::kDrop;
    case XdpVerdict::kTx:
      ++stats_.tx;
      std::swap(frame.dst, frame.src);
      return net::NicAction::kTx;
    case XdpVerdict::kAborted:
      break;
  }
  ++stats_.aborted;
  return net::NicAction::kAborted;
}

}  // namespace steelnet::ebpf
