#include "ebpf/xdp.hpp"

#include <utility>

#include "obs/hub.hpp"

namespace steelnet::ebpf {

XdpHook::XdpHook(Program program, CostParams cost, std::uint64_t seed)
    : vm_((verify_or_throw(program), std::move(program)), cost, seed) {}

net::NicAction XdpHook::process(net::Frame& frame, sim::SimTime now,
                                sim::SimTime& cost_out) {
  const RunResult r = vm_.run(frame, now);
  ++stats_.runs;
  cost_out = r.exec_time;
  if (observer_) observer_(r);
  switch (r.verdict) {
    case XdpVerdict::kPass:
      ++stats_.pass;
      return net::NicAction::kPass;
    case XdpVerdict::kDrop:
      ++stats_.drop;
      return net::NicAction::kDrop;
    case XdpVerdict::kTx:
      ++stats_.tx;
      std::swap(frame.dst, frame.src);
      return net::NicAction::kTx;
    case XdpVerdict::kAborted:
      break;
  }
  ++stats_.aborted;
  return net::NicAction::kAborted;
}

void XdpHook::register_metrics(obs::ObsHub& hub,
                               const std::string& node_label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({node_label, "xdp", "runs"}, &stats_.runs);
  reg.bind_counter({node_label, "xdp", "pass"}, &stats_.pass);
  reg.bind_counter({node_label, "xdp", "drop"}, &stats_.drop);
  reg.bind_counter({node_label, "xdp", "tx"}, &stats_.tx);
  reg.bind_counter({node_label, "xdp", "aborted"}, &stats_.aborted);
  vm_.register_metrics(hub, node_label);
}

}  // namespace steelnet::ebpf
