#include "ebpf/assembler.hpp"

#include <stdexcept>

namespace steelnet::ebpf {

Assembler::Assembler(std::string program_name)
    : name_(std::move(program_name)) {}

Assembler& Assembler::emit(Insn insn) {
  insns_.push_back(insn);
  return *this;
}

Assembler& Assembler::mov_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kMovImm, dst, 0, 0, imm});
}
Assembler& Assembler::mov_reg(std::uint8_t dst, std::uint8_t src) {
  return emit({Op::kMovReg, dst, src, 0, 0});
}
Assembler& Assembler::add_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kAddImm, dst, 0, 0, imm});
}
Assembler& Assembler::add_reg(std::uint8_t dst, std::uint8_t src) {
  return emit({Op::kAddReg, dst, src, 0, 0});
}
Assembler& Assembler::sub_reg(std::uint8_t dst, std::uint8_t src) {
  return emit({Op::kSubReg, dst, src, 0, 0});
}
Assembler& Assembler::sub_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kSubImm, dst, 0, 0, imm});
}
Assembler& Assembler::mul_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kMulImm, dst, 0, 0, imm});
}
Assembler& Assembler::div_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kDivImm, dst, 0, 0, imm});
}
Assembler& Assembler::and_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kAndImm, dst, 0, 0, imm});
}
Assembler& Assembler::or_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kOrImm, dst, 0, 0, imm});
}
Assembler& Assembler::xor_reg(std::uint8_t dst, std::uint8_t src) {
  return emit({Op::kXorReg, dst, src, 0, 0});
}
Assembler& Assembler::lsh_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kLshImm, dst, 0, 0, imm});
}
Assembler& Assembler::rsh_imm(std::uint8_t dst, std::int64_t imm) {
  return emit({Op::kRshImm, dst, 0, 0, imm});
}
Assembler& Assembler::neg(std::uint8_t dst) {
  return emit({Op::kNeg, dst, 0, 0, 0});
}

Assembler& Assembler::ld_pkt_b(std::uint8_t dst, std::int16_t off) {
  return emit({Op::kLdPktB, dst, 0, off, 0});
}
Assembler& Assembler::ld_pkt_h(std::uint8_t dst, std::int16_t off) {
  return emit({Op::kLdPktH, dst, 0, off, 0});
}
Assembler& Assembler::ld_pkt_w(std::uint8_t dst, std::int16_t off) {
  return emit({Op::kLdPktW, dst, 0, off, 0});
}
Assembler& Assembler::ld_pkt_dw(std::uint8_t dst, std::int16_t off) {
  return emit({Op::kLdPktDw, dst, 0, off, 0});
}
Assembler& Assembler::st_pkt_b(std::int16_t off, std::uint8_t src) {
  return emit({Op::kStPktB, 0, src, off, 0});
}
Assembler& Assembler::st_pkt_h(std::int16_t off, std::uint8_t src) {
  return emit({Op::kStPktH, 0, src, off, 0});
}
Assembler& Assembler::st_pkt_w(std::int16_t off, std::uint8_t src) {
  return emit({Op::kStPktW, 0, src, off, 0});
}
Assembler& Assembler::st_pkt_dw(std::int16_t off, std::uint8_t src) {
  return emit({Op::kStPktDw, 0, src, off, 0});
}

Assembler& Assembler::ld_stack_dw(std::uint8_t dst, std::int16_t off) {
  return emit({Op::kLdStackDw, dst, 0, off, 0});
}
Assembler& Assembler::st_stack_dw(std::int16_t off, std::uint8_t src) {
  return emit({Op::kStStackDw, 0, src, off, 0});
}

Assembler& Assembler::call(HelperId helper) {
  return emit({Op::kCall, 0, 0, 0, static_cast<std::int64_t>(helper)});
}

Assembler& Assembler::label(const std::string& name) {
  if (!labels_.emplace(name, insns_.size()).second) {
    throw std::runtime_error("duplicate label: " + name);
  }
  return *this;
}

Assembler& Assembler::jump(Op op, std::uint8_t dst, std::uint8_t src,
                           std::int64_t imm, const std::string& label) {
  fixups_.emplace_back(insns_.size(), label);
  return emit({op, dst, src, 0, imm});
}

Assembler& Assembler::ja(const std::string& label) {
  return jump(Op::kJa, 0, 0, 0, label);
}
Assembler& Assembler::jeq_imm(std::uint8_t dst, std::int64_t imm,
                              const std::string& label) {
  return jump(Op::kJeqImm, dst, 0, imm, label);
}
Assembler& Assembler::jne_imm(std::uint8_t dst, std::int64_t imm,
                              const std::string& label) {
  return jump(Op::kJneImm, dst, 0, imm, label);
}
Assembler& Assembler::jgt_imm(std::uint8_t dst, std::int64_t imm,
                              const std::string& label) {
  return jump(Op::kJgtImm, dst, 0, imm, label);
}
Assembler& Assembler::jge_reg(std::uint8_t dst, std::uint8_t src,
                              const std::string& label) {
  return jump(Op::kJgeReg, dst, src, 0, label);
}
Assembler& Assembler::jlt_imm(std::uint8_t dst, std::int64_t imm,
                              const std::string& label) {
  return jump(Op::kJltImm, dst, 0, imm, label);
}

Assembler& Assembler::exit() { return emit({Op::kExit, 0, 0, 0, 0}); }

Assembler& Assembler::ret(XdpVerdict verdict) {
  mov_imm(0, static_cast<std::int64_t>(verdict));
  return exit();
}

Program Assembler::finish() {
  for (const auto& [idx, label] : fixups_) {
    const auto it = labels_.find(label);
    if (it == labels_.end()) {
      throw std::runtime_error("undefined label: " + label);
    }
    // eBPF jump offsets are relative to the *next* instruction.
    const std::int64_t rel =
        static_cast<std::int64_t>(it->second) -
        static_cast<std::int64_t>(idx) - 1;
    insns_[idx].off = static_cast<std::int16_t>(rel);
  }
  return Program{name_, insns_};
}

}  // namespace steelnet::ebpf
