#include "ebpf/verifier.hpp"

#include <stdexcept>
#include <vector>

namespace steelnet::ebpf {

namespace {

bool is_jump(Op op) {
  switch (op) {
    case Op::kJa:
    case Op::kJeqImm:
    case Op::kJeqReg:
    case Op::kJneImm:
    case Op::kJneReg:
    case Op::kJgtImm:
    case Op::kJgtReg:
    case Op::kJgeImm:
    case Op::kJgeReg:
    case Op::kJltImm:
    case Op::kJltReg:
      return true;
    default:
      return false;
  }
}

/// Registers an instruction reads / writes, for def-before-use analysis.
struct RegUse {
  std::uint32_t reads = 0;   // bitmask
  std::uint32_t writes = 0;  // bitmask
};

RegUse reg_use(const Insn& i) {
  RegUse u;
  auto rd = [&](std::uint8_t r) { u.reads |= 1u << r; };
  auto wr = [&](std::uint8_t r) { u.writes |= 1u << r; };
  switch (i.op) {
    case Op::kMovImm:
      wr(i.dst);
      break;
    case Op::kMovReg:
      rd(i.src);
      wr(i.dst);
      break;
    case Op::kNeg:
      rd(i.dst);
      wr(i.dst);
      break;
    case Op::kAddImm: case Op::kSubImm: case Op::kMulImm: case Op::kDivImm:
    case Op::kAndImm: case Op::kOrImm: case Op::kXorImm:
    case Op::kLshImm: case Op::kRshImm:
      rd(i.dst);
      wr(i.dst);
      break;
    case Op::kAddReg: case Op::kSubReg: case Op::kMulReg: case Op::kDivReg:
    case Op::kAndReg: case Op::kOrReg: case Op::kXorReg:
    case Op::kLshReg: case Op::kRshReg:
      rd(i.dst);
      rd(i.src);
      wr(i.dst);
      break;
    case Op::kLdPktB: case Op::kLdPktH: case Op::kLdPktW: case Op::kLdPktDw:
    case Op::kLdStackDw:
      wr(i.dst);
      break;
    case Op::kStPktB: case Op::kStPktH: case Op::kStPktW: case Op::kStPktDw:
    case Op::kStStackDw:
      rd(i.src);
      break;
    case Op::kCall:
      // Helpers read r1-r5 as needed; we conservatively require r1-r3
      // for helpers that take arguments, and all clobber r0-r5.
      switch (static_cast<HelperId>(i.imm)) {
        case HelperId::kRingbufOutput:
          rd(1);
          rd(2);
          break;
        case HelperId::kMapLookup:
          rd(1);
          rd(2);
          break;
        case HelperId::kMapUpdate:
          rd(1);
          rd(2);
          rd(3);
          break;
        case HelperId::kKtimeGetNs:
        case HelperId::kGetPktLen:
          break;
      }
      for (std::uint8_t r = 0; r <= 5; ++r) wr(r);
      break;
    case Op::kJa:
      break;
    case Op::kJeqImm: case Op::kJneImm: case Op::kJgtImm: case Op::kJltImm:
    case Op::kJgeImm:
      rd(i.dst);
      break;
    case Op::kJeqReg: case Op::kJneReg: case Op::kJgtReg: case Op::kJgeReg:
    case Op::kJltReg:
      rd(i.dst);
      rd(i.src);
      break;
    case Op::kExit:
      rd(0);
      break;
  }
  return u;
}

bool valid_helper(std::int64_t imm) {
  switch (static_cast<HelperId>(imm)) {
    case HelperId::kKtimeGetNs:
    case HelperId::kRingbufOutput:
    case HelperId::kMapLookup:
    case HelperId::kMapUpdate:
    case HelperId::kGetPktLen:
      return true;
  }
  return false;
}

std::size_t access_width(Op op) {
  switch (op) {
    case Op::kLdPktB: case Op::kStPktB: return 1;
    case Op::kLdPktH: case Op::kStPktH: return 2;
    case Op::kLdPktW: case Op::kStPktW: return 4;
    default: return 8;
  }
}

}  // namespace

VerifierResult verify(const Program& program) {
  const auto& insns = program.insns;
  auto reject = [&](std::size_t idx, const std::string& why) {
    VerifierResult r;
    r.ok = false;
    r.error = program.name + ": insn " + std::to_string(idx) + " (" +
              (idx < insns.size() ? disassemble(insns[idx]) : "<eof>") +
              "): " + why;
    return r;
  };

  if (insns.empty()) return reject(0, "empty program");
  if (insns.size() > kMaxInsns) return reject(0, "program too long");

  // --- structural checks ---
  for (std::size_t i = 0; i < insns.size(); ++i) {
    const Insn& insn = insns[i];
    const RegUse u = reg_use(insn);
    for (std::uint8_t r = 0; r < 16; ++r) {
      const bool used = ((u.reads | u.writes) >> r) & 1;
      if (used && r >= kNumRegisters) {
        return reject(i, "register out of range");
      }
    }
    if ((u.writes >> kFramePointer) & 1) {
      return reject(i, "write to frame pointer r10");
    }
    if (is_jump(insn.op)) {
      if (insn.off < 0) return reject(i, "backward jump (loops forbidden)");
      const std::size_t target = i + 1 + static_cast<std::size_t>(insn.off);
      if (target >= insns.size()) return reject(i, "jump out of range");
    }
    switch (insn.op) {
      case Op::kLdPktB: case Op::kLdPktH: case Op::kLdPktW: case Op::kLdPktDw:
      case Op::kStPktB: case Op::kStPktH: case Op::kStPktW: case Op::kStPktDw: {
        if (insn.off < 0) return reject(i, "negative packet offset");
        if (static_cast<std::size_t>(insn.off) + access_width(insn.op) >
            kMaxPacketOffset) {
          return reject(i, "packet offset exceeds static bound");
        }
        break;
      }
      case Op::kLdStackDw:
      case Op::kStStackDw: {
        if (insn.off >= 0) return reject(i, "stack offset must be negative");
        if (insn.off < -static_cast<std::int32_t>(kStackBytes)) {
          return reject(i, "stack offset below frame");
        }
        if ((-insn.off) % 8 != 0) return reject(i, "unaligned stack access");
        break;
      }
      case Op::kCall:
        if (!valid_helper(insn.imm)) return reject(i, "unknown helper");
        break;
      case Op::kDivImm:
        if (insn.imm == 0) return reject(i, "division by constant zero");
        break;
      case Op::kLshImm:
      case Op::kRshImm:
        if (insn.imm < 0 || insn.imm > 63) return reject(i, "bad shift");
        break;
      default:
        break;
    }
  }
  // Only Exit and an unconditional jump cannot fall through.
  if (insns.back().op != Op::kExit && insns.back().op != Op::kJa) {
    return reject(insns.size() - 1, "program can fall off the end");
  }

  // --- def-before-use over the (acyclic) CFG ---
  // init[i] = registers definitely initialized when reaching insn i.
  // r1 = context pointer, r10 = frame pointer on entry.
  constexpr std::uint32_t kEntryInit = (1u << 1) | (1u << kFramePointer);
  constexpr std::uint32_t kUnreached = 0xffffffffu;  // top element (meet = &)
  std::vector<std::uint32_t> init(insns.size(), kUnreached);
  init[0] = kEntryInit;
  bool falls_off = false;
  for (std::size_t i = 0; i < insns.size(); ++i) {
    if (init[i] == kUnreached) continue;  // unreachable code is fine
    const Insn& insn = insns[i];
    const RegUse u = reg_use(insn);
    if ((u.reads & ~init[i]) != 0) {
      for (std::uint8_t r = 0; r < kNumRegisters; ++r) {
        if ((u.reads >> r) & 1 && !((init[i] >> r) & 1)) {
          return reject(i, "read of uninitialized register r" +
                               std::to_string(r));
        }
      }
    }
    const std::uint32_t out = init[i] | u.writes;
    auto propagate = [&](std::size_t succ) {
      init[succ] &= out;  // meet: initialized on *all* paths
    };
    if (insn.op == Op::kExit) continue;
    if (insn.op == Op::kJa) {
      propagate(i + 1 + static_cast<std::size_t>(insn.off));
      continue;
    }
    if (is_jump(insn.op)) {
      propagate(i + 1 + static_cast<std::size_t>(insn.off));
      propagate(i + 1);
      continue;
    }
    if (i + 1 < insns.size()) {
      propagate(i + 1);
    } else {
      falls_off = true;
    }
  }
  if (falls_off) return reject(insns.size() - 1, "fall off the end");

  VerifierResult r;
  r.ok = true;
  r.max_insns_executed = insns.size();
  return r;
}

VerifierResult verify_or_throw(const Program& program) {
  VerifierResult r = verify(program);
  if (!r.ok) throw std::invalid_argument("verifier: " + r.error);
  return r;
}

}  // namespace steelnet::ebpf
