// steelnet::ebpf -- maps and the ring buffer (program <-> user plumbing).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace steelnet::ebpf {

/// A u64 -> u64 hash map with a bounded entry count, as BPF_MAP_TYPE_HASH.
class HashMap {
 public:
  explicit HashMap(std::size_t max_entries = 1024);

  /// Returns the value or 0 on miss (helper semantics: NULL pointer).
  [[nodiscard]] std::uint64_t lookup(std::uint64_t key) const;
  [[nodiscard]] bool contains(std::uint64_t key) const;
  /// Returns false (and drops the update) when the map is full.
  bool update(std::uint64_t key, std::uint64_t value);
  bool erase(std::uint64_t key);
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }

 private:
  std::size_t max_entries_;
  std::unordered_map<std::uint64_t, std::uint64_t> data_;
};

/// BPF_MAP_TYPE_RINGBUF: a byte-budgeted single-producer ring. Records
/// are dropped (and counted) when the buffer is full -- exactly the
/// back-pressure behaviour whose cost shows up in Fig. 4's TS-RB curves.
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity_bytes = 1 << 16);

  struct Record {
    std::vector<std::uint8_t> data;
  };

  /// Producer side (helper). Returns false if the record didn't fit.
  bool output(const std::uint8_t* data, std::size_t len);

  /// Consumer side: pops the oldest record, if any.
  [[nodiscard]] bool empty() const { return records_.empty(); }
  Record pop();
  /// Drains the consumer side without reading (a fast consumer keeps the
  /// ring near-empty; experiments call this between packets).
  void drain();

  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t produced() const { return produced_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  static constexpr std::size_t kRecordHeader = 8;  // length + busy bit word

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::deque<Record> records_;
  std::uint64_t produced_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace steelnet::ebpf
