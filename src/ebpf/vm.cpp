#include "ebpf/vm.hpp"

#include <cstring>

#include "obs/hub.hpp"

namespace steelnet::ebpf {

Vm::Vm(Program program, CostParams cost, std::uint64_t seed)
    : program_(std::move(program)), cost_(cost, seed) {}

namespace {

std::uint64_t load_pkt(const net::Frame& f, std::size_t off, std::size_t w) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w; ++i) {
    v |= static_cast<std::uint64_t>(f.payload[off + i]) << (8 * i);
  }
  return v;
}

void store_pkt(net::Frame& f, std::size_t off, std::size_t w,
               std::uint64_t v) {
  for (std::size_t i = 0; i < w; ++i) {
    f.payload[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

RunResult Vm::run(net::Frame& frame, sim::SimTime now) {
  ++runs_;
  RunResult result = run_impl(frame, now);
  insns_total_ += result.insns_executed;
  helpers_total_ += result.helper_calls;
  exec_ns_total_ += static_cast<std::uint64_t>(result.exec_time.nanos());
  if (result.verdict == XdpVerdict::kAborted) ++aborts_total_;
  return result;
}

void Vm::register_metrics(obs::ObsHub& hub,
                          const std::string& node_label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({node_label, "ebpf", "runs"}, &runs_);
  reg.bind_counter({node_label, "ebpf", "insns_total"}, &insns_total_);
  reg.bind_counter({node_label, "ebpf", "helpers_total"}, &helpers_total_);
  reg.bind_counter({node_label, "ebpf", "exec_ns_total"}, &exec_ns_total_);
  reg.bind_counter({node_label, "ebpf", "aborts_total"}, &aborts_total_);
}

RunResult Vm::run_impl(net::Frame& frame, sim::SimTime now) {
  RunResult result;
  std::array<std::uint64_t, kNumRegisters> reg{};
  std::array<std::uint8_t, kStackBytes> stack{};
  reg[1] = 0;  // ctx pointer is opaque in this model
  reg[kFramePointer] = kStackBytes;

  double cost_ns = cost_.params().per_run_base_ns + cost_.environment_noise();
  std::size_t pc = 0;
  const auto& insns = program_.insns;

  auto fault = [&](const std::string& why) {
    result.verdict = XdpVerdict::kAborted;
    result.fault = why + " at insn " + std::to_string(pc);
    result.exec_time =
        sim::SimTime{static_cast<std::int64_t>(cost_ns)};
    return result;
  };

  while (true) {
    if (pc >= insns.size()) return fault("pc out of range");
    if (result.insns_executed++ > kMaxInsns) {
      return fault("instruction budget exceeded");
    }
    const Insn& insn = insns[pc];
    cost_ns += cost_.insn_cost(insn);

    auto pkt_ok = [&](std::size_t width) {
      const auto off = static_cast<std::size_t>(insn.off);
      return off + width <= frame.payload.size();
    };

    switch (insn.op) {
      case Op::kMovImm:
        reg[insn.dst] = static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kMovReg:
        reg[insn.dst] = reg[insn.src];
        break;
      case Op::kAddImm:
        reg[insn.dst] += static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kAddReg:
        reg[insn.dst] += reg[insn.src];
        break;
      case Op::kSubImm:
        reg[insn.dst] -= static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kSubReg:
        reg[insn.dst] -= reg[insn.src];
        break;
      case Op::kMulImm:
        reg[insn.dst] *= static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kMulReg:
        reg[insn.dst] *= reg[insn.src];
        break;
      case Op::kDivImm:
        reg[insn.dst] =
            insn.imm == 0 ? 0
                          : reg[insn.dst] / static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kDivReg:
        reg[insn.dst] = reg[insn.src] == 0 ? 0 : reg[insn.dst] / reg[insn.src];
        break;
      case Op::kAndImm:
        reg[insn.dst] &= static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kAndReg:
        reg[insn.dst] &= reg[insn.src];
        break;
      case Op::kOrImm:
        reg[insn.dst] |= static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kOrReg:
        reg[insn.dst] |= reg[insn.src];
        break;
      case Op::kXorImm:
        reg[insn.dst] ^= static_cast<std::uint64_t>(insn.imm);
        break;
      case Op::kXorReg:
        reg[insn.dst] ^= reg[insn.src];
        break;
      case Op::kLshImm:
        reg[insn.dst] <<= insn.imm;
        break;
      case Op::kLshReg:
        reg[insn.dst] <<= (reg[insn.src] & 63);
        break;
      case Op::kRshImm:
        reg[insn.dst] >>= insn.imm;
        break;
      case Op::kRshReg:
        reg[insn.dst] >>= (reg[insn.src] & 63);
        break;
      case Op::kNeg:
        reg[insn.dst] = ~reg[insn.dst] + 1;
        break;

      case Op::kLdPktB:
        if (!pkt_ok(1)) return fault("packet load out of bounds");
        reg[insn.dst] = load_pkt(frame, std::size_t(insn.off), 1);
        break;
      case Op::kLdPktH:
        if (!pkt_ok(2)) return fault("packet load out of bounds");
        reg[insn.dst] = load_pkt(frame, std::size_t(insn.off), 2);
        break;
      case Op::kLdPktW:
        if (!pkt_ok(4)) return fault("packet load out of bounds");
        reg[insn.dst] = load_pkt(frame, std::size_t(insn.off), 4);
        break;
      case Op::kLdPktDw:
        if (!pkt_ok(8)) return fault("packet load out of bounds");
        reg[insn.dst] = load_pkt(frame, std::size_t(insn.off), 8);
        break;
      case Op::kStPktB:
        if (!pkt_ok(1)) return fault("packet store out of bounds");
        store_pkt(frame, std::size_t(insn.off), 1, reg[insn.src]);
        break;
      case Op::kStPktH:
        if (!pkt_ok(2)) return fault("packet store out of bounds");
        store_pkt(frame, std::size_t(insn.off), 2, reg[insn.src]);
        break;
      case Op::kStPktW:
        if (!pkt_ok(4)) return fault("packet store out of bounds");
        store_pkt(frame, std::size_t(insn.off), 4, reg[insn.src]);
        break;
      case Op::kStPktDw:
        if (!pkt_ok(8)) return fault("packet store out of bounds");
        store_pkt(frame, std::size_t(insn.off), 8, reg[insn.src]);
        break;

      case Op::kLdStackDw: {
        const std::size_t at = kStackBytes + insn.off;  // off < 0, verified
        std::uint64_t v;
        std::memcpy(&v, stack.data() + at, 8);
        reg[insn.dst] = v;
        break;
      }
      case Op::kStStackDw: {
        const std::size_t at = kStackBytes + insn.off;
        const std::uint64_t v = reg[insn.src];
        std::memcpy(stack.data() + at, &v, 8);
        break;
      }

      case Op::kCall: {
        ++result.helper_calls;
        const auto helper = static_cast<HelperId>(insn.imm);
        cost_ns += cost_.helper_cost(helper);
        switch (helper) {
          case HelperId::kKtimeGetNs:
            reg[0] = static_cast<std::uint64_t>(now.nanos()) +
                     static_cast<std::uint64_t>(cost_ns);
            break;
          case HelperId::kRingbufOutput: {
            // r1 = negative stack offset of the record, r2 = length.
            const auto off = static_cast<std::int64_t>(reg[1]);
            const auto len = reg[2];
            if (off >= 0 || -off > std::int64_t(kStackBytes) ||
                len > std::uint64_t(-off)) {
              return fault("ringbuf_output: bad stack range");
            }
            const std::size_t at = kStackBytes + off;
            reg[0] = ringbuf_.output(stack.data() + at, len) ? 0 : 1;
            break;
          }
          case HelperId::kMapLookup:
            reg[0] = map_.lookup(reg[2]);
            break;
          case HelperId::kMapUpdate:
            reg[0] = map_.update(reg[2], reg[3]) ? 0 : 1;
            break;
          case HelperId::kGetPktLen:
            reg[0] = frame.payload.size();
            break;
        }
        break;
      }

      case Op::kJa:
        pc += static_cast<std::size_t>(insn.off);
        break;
      case Op::kJeqImm:
        if (reg[insn.dst] == std::uint64_t(insn.imm)) pc += std::size_t(insn.off);
        break;
      case Op::kJeqReg:
        if (reg[insn.dst] == reg[insn.src]) pc += std::size_t(insn.off);
        break;
      case Op::kJneImm:
        if (reg[insn.dst] != std::uint64_t(insn.imm)) pc += std::size_t(insn.off);
        break;
      case Op::kJneReg:
        if (reg[insn.dst] != reg[insn.src]) pc += std::size_t(insn.off);
        break;
      case Op::kJgtImm:
        if (reg[insn.dst] > std::uint64_t(insn.imm)) pc += std::size_t(insn.off);
        break;
      case Op::kJgtReg:
        if (reg[insn.dst] > reg[insn.src]) pc += std::size_t(insn.off);
        break;
      case Op::kJgeImm:
        if (reg[insn.dst] >= std::uint64_t(insn.imm)) pc += std::size_t(insn.off);
        break;
      case Op::kJgeReg:
        if (reg[insn.dst] >= reg[insn.src]) pc += std::size_t(insn.off);
        break;
      case Op::kJltImm:
        if (reg[insn.dst] < std::uint64_t(insn.imm)) pc += std::size_t(insn.off);
        break;
      case Op::kJltReg:
        if (reg[insn.dst] < reg[insn.src]) pc += std::size_t(insn.off);
        break;

      case Op::kExit: {
        const auto v = static_cast<std::int64_t>(reg[0]);
        result.verdict = (v >= 0 && v <= 3) ? static_cast<XdpVerdict>(v)
                                            : XdpVerdict::kAborted;
        result.exec_time =
            sim::SimTime{static_cast<std::int64_t>(cost_ns)};
        return result;
      }
    }
    ++pc;
  }
}

}  // namespace steelnet::ebpf
