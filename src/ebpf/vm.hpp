// steelnet::ebpf -- the interpreter.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "ebpf/cost.hpp"
#include "ebpf/isa.hpp"
#include "ebpf/maps.hpp"
#include "net/frame.hpp"
#include "sim/time.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::ebpf {

/// Outcome of one program execution.
struct RunResult {
  XdpVerdict verdict = XdpVerdict::kAborted;
  std::uint64_t insns_executed = 0;
  std::uint64_t helper_calls = 0;
  /// Modelled wall-clock execution time (cost model total).
  sim::SimTime exec_time;
  /// Runtime fault description (empty if none). Faults yield kAborted.
  std::string fault;
};

/// Executes verified programs against live frames.
///
/// The VM owns the program's maps and ring buffer (one of each suffices
/// for this library's programs). Callers must verify programs first:
/// run() trusts static bounds and only re-checks dynamic packet length.
class Vm {
 public:
  Vm(Program program, CostParams cost = {}, std::uint64_t seed = 1);

  /// `now` feeds bpf_ktime_get_ns. The frame may be mutated (XDP_TX
  /// programs rewrite headers/payload in place).
  RunResult run(net::Frame& frame, sim::SimTime now);

  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] HashMap& map() { return map_; }
  [[nodiscard]] RingBuffer& ringbuf() { return ringbuf_; }
  [[nodiscard]] CostModel& cost_model() { return cost_; }

  /// Total ring-buffer drops etc. survive across runs (stateful maps).
  [[nodiscard]] std::uint64_t runs() const { return runs_; }

  /// Lifetime totals over all runs (cost-model time in ns, instructions
  /// retired, helper calls, aborted runs).
  [[nodiscard]] std::uint64_t insns_total() const { return insns_total_; }
  [[nodiscard]] std::uint64_t helpers_total() const { return helpers_total_; }
  [[nodiscard]] std::uint64_t exec_ns_total() const { return exec_ns_total_; }
  [[nodiscard]] std::uint64_t aborts_total() const { return aborts_total_; }

  /// Binds run totals under `<node_label>/ebpf/...`.
  void register_metrics(obs::ObsHub& hub, const std::string& node_label) const;

 private:
  RunResult run_impl(net::Frame& frame, sim::SimTime now);

  Program program_;
  CostModel cost_;
  HashMap map_;
  RingBuffer ringbuf_;
  std::uint64_t runs_ = 0;
  std::uint64_t insns_total_ = 0;
  std::uint64_t helpers_total_ = 0;
  std::uint64_t exec_ns_total_ = 0;
  std::uint64_t aborts_total_ = 0;
};

}  // namespace steelnet::ebpf
