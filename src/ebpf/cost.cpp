#include "ebpf/cost.hpp"

#include <algorithm>
#include <cmath>

namespace steelnet::ebpf {

CostModel::CostModel(CostParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

void CostModel::set_concurrent_flows(std::size_t flows) {
  flows_ = std::max<std::size_t>(1, flows);
}

double CostModel::miss_probability() const {
  const double p =
      params_.cache_miss_p *
      (1.0 + params_.per_flow_miss_factor * double(flows_ - 1));
  return std::min(p, 0.75);
}

double CostModel::insn_cost(const Insn& insn) {
  double ns;
  bool touches_memory = false;
  switch (insn.op) {
    case Op::kLdPktB: case Op::kLdPktH: case Op::kLdPktW: case Op::kLdPktDw:
    case Op::kStPktB: case Op::kStPktH: case Op::kStPktW: case Op::kStPktDw:
      ns = params_.pkt_access_ns;
      touches_memory = true;
      break;
    case Op::kLdStackDw:
    case Op::kStStackDw:
      ns = params_.stack_access_ns;
      touches_memory = true;
      break;
    case Op::kCall:
      return 0.0;  // accounted via helper_cost
    default:
      ns = params_.insn_ns;
      break;
  }
  if (touches_memory && params_.cache_miss_ns > 0 &&
      rng_.bernoulli(miss_probability())) {
    ns += params_.cache_miss_ns;
  }
  return ns;
}

double CostModel::helper_cost(HelperId helper) {
  switch (helper) {
    case HelperId::kKtimeGetNs:
    case HelperId::kGetPktLen:
      return params_.ktime_ns;
    case HelperId::kRingbufOutput: {
      double ns = params_.ringbuf_base_ns;
      if (params_.ringbuf_sigma > 0) {
        // Lognormal multiplier with median 1.
        ns *= rng_.lognormal(0.0, params_.ringbuf_sigma);
      }
      return ns;
    }
    case HelperId::kMapLookup:
    case HelperId::kMapUpdate: {
      double ns = params_.map_ns;
      if (params_.cache_miss_ns > 0 && rng_.bernoulli(miss_probability())) {
        ns += params_.cache_miss_ns;
      }
      return ns;
    }
  }
  return 0.0;
}

double CostModel::environment_noise() {
  double sigma = params_.env_sigma_ns;
  if (flows_ > 1 && params_.per_flow_env_ns > 0) {
    sigma += params_.per_flow_env_ns * std::sqrt(double(flows_ - 1));
  }
  double ns = sigma > 0 ? std::abs(rng_.normal(0.0, sigma)) : 0.0;
  const double irq_p =
      std::min(params_.irq_p * double(flows_), 0.5);
  if (irq_p > 0 && rng_.bernoulli(irq_p)) ns += params_.irq_ns;
  return ns;
}

CostParams CostModel::deterministic(CostParams p) {
  p.ringbuf_sigma = 0;
  p.cache_miss_p = 0;
  p.env_sigma_ns = 0;
  p.per_flow_miss_factor = 0;
  p.per_flow_env_ns = 0;
  p.irq_p = 0;
  return p;
}

}  // namespace steelnet::ebpf
