// steelnet::ebpf -- the execution-time model.
//
// Real XDP programs run JIT-compiled: an ALU instruction costs well under
// a nanosecond, but helper calls, map lookups and the ring buffer touch
// shared cache lines and take locks, and the *execution environment*
// (cache/TLB pressure from concurrent flows, occasional IRQs) adds jitter
// that no amount of code care removes. Fig. 4's two findings -- (1) small
// code changes shift the delay CDF, (2) more flows handled by the same
// hook raise jitter -- fall directly out of this model:
//   cost = sum(per-insn) + sum(per-helper draws) + environment noise
#pragma once

#include <cstdint>

#include "ebpf/isa.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace steelnet::ebpf {

struct CostParams {
  /// Fixed per-run overhead: NIC rx pipeline, DMA completion, XDP
  /// dispatch. Charged once per program execution.
  double per_run_base_ns = 0.0;
  /// JITed ALU/branch instruction.
  double insn_ns = 0.9;
  /// Packet byte load/store (usually L1-resident: the NIC just DMA'd it).
  double pkt_access_ns = 1.8;
  /// Stack access.
  double stack_access_ns = 1.2;
  /// bpf_ktime_get_ns(): reads the clocksource.
  double ktime_ns = 18.0;
  /// Ring buffer reserve+memcpy+commit fast path...
  double ringbuf_base_ns = 95.0;
  /// ...plus a lognormal excursion (producer lock contention, wakeup of
  /// the consumer, cache-line bouncing). sigma of ln-space.
  double ringbuf_sigma = 0.55;
  /// Hash-map operation fast path.
  double map_ns = 22.0;
  /// Probability one memory-touching op misses cache...
  double cache_miss_p = 0.015;
  /// ...costing this much extra.
  double cache_miss_ns = 90.0;
  /// Per-packet environment noise floor (PCIe completion scheduling,
  /// prefetcher nondeterminism): half-normal sigma.
  double env_sigma_ns = 14.0;
  /// Each additional concurrent flow handled by the same hook adds cache
  /// pressure: miss probability grows by this factor per flow...
  double per_flow_miss_factor = 0.08;
  /// ...and the environment noise sigma by this many ns per sqrt(flow).
  double per_flow_env_ns = 55.0;
  /// Probability of a softirq/IRQ preemption mid-program per packet,
  /// scaled by flow count.
  double irq_p = 0.00004;
  double irq_ns = 3500.0;
};

/// Draws execution-time contributions for one program run. Stateful:
/// set_concurrent_flows models the shared-hook pressure of Fig. 4-right.
class CostModel {
 public:
  CostModel(CostParams params, std::uint64_t seed);

  void set_concurrent_flows(std::size_t flows);
  [[nodiscard]] std::size_t concurrent_flows() const { return flows_; }

  /// Cost of one instruction (may include a stochastic miss).
  double insn_cost(const Insn& insn);
  /// Cost of one helper call.
  double helper_cost(HelperId helper);
  /// Per-packet environment noise (added once per program run).
  double environment_noise();

  [[nodiscard]] const CostParams& params() const { return params_; }

  /// A zero-variance copy of `p` (every stochastic term disabled) -- the
  /// ablation in DESIGN.md: constant costs collapse the Fig. 4 spread.
  [[nodiscard]] static CostParams deterministic(CostParams p);

 private:
  double miss_probability() const;

  CostParams params_;
  sim::Rng rng_;
  std::size_t flows_ = 1;
};

}  // namespace steelnet::ebpf
