#include "ebpf/programs.hpp"

#include <stdexcept>

#include "ebpf/assembler.hpp"

namespace steelnet::ebpf {

std::string to_string(ReflectorVariant v) {
  switch (v) {
    case ReflectorVariant::kBase: return "Base";
    case ReflectorVariant::kTs: return "TS";
    case ReflectorVariant::kTsTs: return "TS-TS";
    case ReflectorVariant::kTsRb: return "TS-RB";
    case ReflectorVariant::kTsOw: return "TS-OW";
    case ReflectorVariant::kTsDRb: return "TS-D-RB";
  }
  return "?";
}

std::vector<ReflectorVariant> all_reflector_variants() {
  return {ReflectorVariant::kBase,  ReflectorVariant::kTs,
          ReflectorVariant::kTsTs,  ReflectorVariant::kTsRb,
          ReflectorVariant::kTsOw,  ReflectorVariant::kTsDRb};
}

Program make_reflector(ReflectorVariant variant) {
  Assembler a(to_string(variant));
  // Common prologue: touch the first payload word (header inspection any
  // real reflector does to decide it owns the packet).
  a.ld_pkt_dw(2, 0);

  switch (variant) {
    case ReflectorVariant::kBase:
      break;

    case ReflectorVariant::kTs:
      a.call(HelperId::kKtimeGetNs);   // r0 = now
      a.st_stack_dw(-8, 0);            // keep it (real code logs it later)
      break;

    case ReflectorVariant::kTsTs:
      a.call(HelperId::kKtimeGetNs);
      a.st_stack_dw(-8, 0);
      a.call(HelperId::kKtimeGetNs);
      a.st_stack_dw(-16, 0);
      break;

    case ReflectorVariant::kTsRb:
      a.call(HelperId::kKtimeGetNs);
      a.st_stack_dw(-8, 0);
      a.mov_imm(1, -8);                // r1 = record offset
      a.mov_imm(2, 8);                 // r2 = record length
      a.call(HelperId::kRingbufOutput);
      break;

    case ReflectorVariant::kTsOw:
      a.call(HelperId::kKtimeGetNs);
      a.st_pkt_dw(kTsOwPayloadOffset, 0);  // overwrite payload in place
      break;

    case ReflectorVariant::kTsDRb:
      a.call(HelperId::kKtimeGetNs);
      a.mov_reg(6, 0);                 // r6 = t0 (callee-saved)
      a.call(HelperId::kKtimeGetNs);
      a.sub_reg(0, 6);                 // r0 = t1 - t0
      a.st_stack_dw(-8, 0);
      a.mov_imm(1, -8);
      a.mov_imm(2, 8);
      a.call(HelperId::kRingbufOutput);
      break;
  }

  a.ret(XdpVerdict::kTx);
  return a.finish();
}

Program make_out_of_bounds_reader() {
  Assembler a("oob-reader");
  a.ld_pkt_dw(2, 1500);  // static bound ok; tiny frames fault at runtime
  a.ret(XdpVerdict::kPass);
  return a.finish();
}

Program make_flow_counter() {
  Assembler a("flow-counter");
  a.ld_pkt_dw(6, 0);                // r6 = flow id (callee-saved)
  a.mov_imm(1, 0);                  // r1 = map id (single map)
  a.mov_reg(2, 6);                  // r2 = key
  a.call(HelperId::kMapLookup);     // r0 = count
  a.add_imm(0, 1);
  a.mov_reg(3, 0);                  // r3 = new value
  a.mov_imm(1, 0);
  a.mov_reg(2, 6);
  a.call(HelperId::kMapUpdate);
  a.ret(XdpVerdict::kPass);
  return a.finish();
}

}  // namespace steelnet::ebpf
