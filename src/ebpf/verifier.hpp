// steelnet::ebpf -- static program verification.
//
// Mirrors the safety arguments of the kernel verifier that matter for the
// paper's determinism discussion (§3):
//   * termination: only forward jumps, bounded instruction count
//   * memory safety: packet/stack offsets statically bounded
//   * defined values: no read of an uninitialized register
//   * no floating point: the ISA simply has none; unknown opcodes reject
// Verification is a pure function: Program -> accept | reject(reason).
#pragma once

#include <optional>
#include <string>

#include "ebpf/isa.hpp"

namespace steelnet::ebpf {

struct VerifierResult {
  bool ok = false;
  std::string error;  ///< empty when ok
  /// Upper bound on executed instructions (= insn count for loop-free
  /// programs); the cost model uses this for worst-case estimates.
  std::size_t max_insns_executed = 0;
};

[[nodiscard]] VerifierResult verify(const Program& program);

/// Throws std::invalid_argument with the verifier error unless `program`
/// verifies. Returns the result for convenience.
VerifierResult verify_or_throw(const Program& program);

}  // namespace steelnet::ebpf
