// steelnet::ebpf -- XDP attachment point: plugs a Vm into a HostNode NIC.
#pragma once

#include <cstdint>
#include <functional>

#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "net/host_node.hpp"

namespace steelnet::ebpf {

struct XdpStats {
  std::uint64_t runs = 0;
  std::uint64_t pass = 0;
  std::uint64_t drop = 0;
  std::uint64_t tx = 0;
  std::uint64_t aborted = 0;
};

/// An XDP-native hook: verifies the program at attach time (like the
/// kernel: unverifiable programs never load), then executes it per frame.
/// On XDP_TX it swaps the Ethernet addresses, making the programs in
/// programs.hpp true reflectors.
class XdpHook final : public net::NicProcessor {
 public:
  /// Throws std::invalid_argument (verifier message) if `program` is
  /// rejected.
  XdpHook(Program program, CostParams cost = {}, std::uint64_t seed = 1);

  net::NicAction process(net::Frame& frame, sim::SimTime now,
                         sim::SimTime& cost_out) override;

  /// Observer invoked after every run (measurement harnesses).
  void set_observer(std::function<void(const RunResult&)> fn) {
    observer_ = std::move(fn);
  }

  /// Concurrency pressure on the hook (Fig. 4-right knob).
  void set_concurrent_flows(std::size_t flows) {
    vm_.cost_model().set_concurrent_flows(flows);
  }

  [[nodiscard]] const XdpStats& stats() const { return stats_; }
  [[nodiscard]] Vm& vm() { return vm_; }

  /// Binds verdict counters under `<node_label>/xdp/...` and the VM's run
  /// totals under `<node_label>/ebpf/...`.
  void register_metrics(obs::ObsHub& hub, const std::string& node_label) const;

 private:
  Vm vm_;
  XdpStats stats_;
  std::function<void(const RunResult&)> observer_;
};

}  // namespace steelnet::ebpf
