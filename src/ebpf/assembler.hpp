// steelnet::ebpf -- a fluent assembler for building programs in C++.
//
// Labels are resolved on finish(); forward references are allowed (eBPF
// verification forbids *backward* jumps, and so does our verifier, but
// the assembler itself doesn't care).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ebpf/isa.hpp"

namespace steelnet::ebpf {

class Assembler {
 public:
  explicit Assembler(std::string program_name);

  // --- ALU ---
  Assembler& mov_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& mov_reg(std::uint8_t dst, std::uint8_t src);
  Assembler& add_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& add_reg(std::uint8_t dst, std::uint8_t src);
  Assembler& sub_reg(std::uint8_t dst, std::uint8_t src);
  Assembler& sub_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& mul_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& div_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& and_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& or_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& xor_reg(std::uint8_t dst, std::uint8_t src);
  Assembler& lsh_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& rsh_imm(std::uint8_t dst, std::int64_t imm);
  Assembler& neg(std::uint8_t dst);

  // --- packet memory ---
  Assembler& ld_pkt_b(std::uint8_t dst, std::int16_t off);
  Assembler& ld_pkt_h(std::uint8_t dst, std::int16_t off);
  Assembler& ld_pkt_w(std::uint8_t dst, std::int16_t off);
  Assembler& ld_pkt_dw(std::uint8_t dst, std::int16_t off);
  Assembler& st_pkt_b(std::int16_t off, std::uint8_t src);
  Assembler& st_pkt_h(std::int16_t off, std::uint8_t src);
  Assembler& st_pkt_w(std::int16_t off, std::uint8_t src);
  Assembler& st_pkt_dw(std::int16_t off, std::uint8_t src);

  // --- stack ---
  Assembler& ld_stack_dw(std::uint8_t dst, std::int16_t off);
  Assembler& st_stack_dw(std::int16_t off, std::uint8_t src);

  // --- control ---
  Assembler& call(HelperId helper);
  Assembler& label(const std::string& name);
  Assembler& ja(const std::string& label);
  Assembler& jeq_imm(std::uint8_t dst, std::int64_t imm,
                     const std::string& label);
  Assembler& jne_imm(std::uint8_t dst, std::int64_t imm,
                     const std::string& label);
  Assembler& jgt_imm(std::uint8_t dst, std::int64_t imm,
                     const std::string& label);
  Assembler& jge_reg(std::uint8_t dst, std::uint8_t src,
                     const std::string& label);
  Assembler& jlt_imm(std::uint8_t dst, std::int64_t imm,
                     const std::string& label);
  Assembler& exit();

  /// Convenience: mov_imm(r0, verdict); exit().
  Assembler& ret(XdpVerdict verdict);

  /// Resolves labels and returns the program. Throws std::runtime_error
  /// on undefined or duplicate labels.
  [[nodiscard]] Program finish();

  [[nodiscard]] std::size_t size() const { return insns_.size(); }

 private:
  Assembler& emit(Insn insn);
  Assembler& jump(Op op, std::uint8_t dst, std::uint8_t src,
                  std::int64_t imm, const std::string& label);

  std::string name_;
  std::vector<Insn> insns_;
  std::map<std::string, std::size_t> labels_;
  // (insn index, label) pairs awaiting resolution
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

}  // namespace steelnet::ebpf
