#include "ebpf/maps.hpp"

#include <stdexcept>

namespace steelnet::ebpf {

HashMap::HashMap(std::size_t max_entries) : max_entries_(max_entries) {
  if (max_entries == 0) throw std::invalid_argument("HashMap: zero capacity");
}

std::uint64_t HashMap::lookup(std::uint64_t key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second;
}

bool HashMap::contains(std::uint64_t key) const { return data_.contains(key); }

bool HashMap::update(std::uint64_t key, std::uint64_t value) {
  const auto it = data_.find(key);
  if (it != data_.end()) {
    it->second = value;
    return true;
  }
  if (data_.size() >= max_entries_) return false;
  data_.emplace(key, value);
  return true;
}

bool HashMap::erase(std::uint64_t key) { return data_.erase(key) > 0; }

RingBuffer::RingBuffer(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("RingBuffer: zero capacity");
  }
}

bool RingBuffer::output(const std::uint8_t* data, std::size_t len) {
  const std::size_t need = len + kRecordHeader;
  if (used_ + need > capacity_) {
    ++dropped_;
    return false;
  }
  Record r;
  r.data.assign(data, data + len);
  used_ += need;
  records_.push_back(std::move(r));
  ++produced_;
  return true;
}

RingBuffer::Record RingBuffer::pop() {
  if (records_.empty()) throw std::logic_error("RingBuffer::pop on empty");
  Record r = std::move(records_.front());
  records_.pop_front();
  used_ -= r.data.size() + kRecordHeader;
  return r;
}

void RingBuffer::drain() {
  records_.clear();
  used_ = 0;
}

}  // namespace steelnet::ebpf
