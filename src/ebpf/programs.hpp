// steelnet::ebpf -- the six reflector programs measured in the paper.
//
// §3: "We evaluate six eBPF programs running in XDP native mode ... Each
// program builds on a base version: (1) the base program reflects packets
// back to the NIC (Base), (2) adds one timestamp (TS), (3) adds two
// timestamps (TS-TS), (4) adds timestamps to a ring buffer (TS-RB),
// (5) adds timestamps into the packet's payload (TS-OW), and (6) adds the
// difference of two timestamps to the ring buffer (TS-D-RB)."
//
// All variants end in XDP_TX; the XdpHook performs the L2 address swap
// that a real reflector does on the Ethernet header.
#pragma once

#include <string>
#include <vector>

#include "ebpf/isa.hpp"

namespace steelnet::ebpf {

enum class ReflectorVariant {
  kBase,
  kTs,
  kTsTs,
  kTsRb,
  kTsOw,
  kTsDRb,
};

[[nodiscard]] std::string to_string(ReflectorVariant v);

/// All six variants in paper order.
[[nodiscard]] std::vector<ReflectorVariant> all_reflector_variants();

/// Builds (and does NOT verify) the given variant. Every program the
/// builder returns passes the verifier; tests assert this property.
[[nodiscard]] Program make_reflector(ReflectorVariant variant);

/// Payload byte offset where TS-OW overwrites the timestamp.
constexpr std::int16_t kTsOwPayloadOffset = 8;

/// A deliberately broken program for failure-injection tests: reads a
/// payload offset beyond any small industrial frame, so the VM aborts at
/// runtime (the verifier accepts it -- the static bound is 2 KiB).
[[nodiscard]] Program make_out_of_bounds_reader();

/// A flow-counting PASS program: counts frames per flow id read from the
/// payload's first word into the hash map. Exercises map helpers.
[[nodiscard]] Program make_flow_counter();

}  // namespace steelnet::ebpf
