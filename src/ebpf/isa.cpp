#include "ebpf/isa.hpp"

#include <sstream>

namespace steelnet::ebpf {

std::string to_string(Op op) {
  switch (op) {
    case Op::kAddImm: return "add_imm";
    case Op::kAddReg: return "add_reg";
    case Op::kSubImm: return "sub_imm";
    case Op::kSubReg: return "sub_reg";
    case Op::kMulImm: return "mul_imm";
    case Op::kMulReg: return "mul_reg";
    case Op::kDivImm: return "div_imm";
    case Op::kDivReg: return "div_reg";
    case Op::kAndImm: return "and_imm";
    case Op::kAndReg: return "and_reg";
    case Op::kOrImm: return "or_imm";
    case Op::kOrReg: return "or_reg";
    case Op::kXorImm: return "xor_imm";
    case Op::kXorReg: return "xor_reg";
    case Op::kLshImm: return "lsh_imm";
    case Op::kLshReg: return "lsh_reg";
    case Op::kRshImm: return "rsh_imm";
    case Op::kRshReg: return "rsh_reg";
    case Op::kMovImm: return "mov_imm";
    case Op::kMovReg: return "mov_reg";
    case Op::kNeg: return "neg";
    case Op::kLdPktB: return "ldpkt_b";
    case Op::kLdPktH: return "ldpkt_h";
    case Op::kLdPktW: return "ldpkt_w";
    case Op::kLdPktDw: return "ldpkt_dw";
    case Op::kStPktB: return "stpkt_b";
    case Op::kStPktH: return "stpkt_h";
    case Op::kStPktW: return "stpkt_w";
    case Op::kStPktDw: return "stpkt_dw";
    case Op::kLdStackDw: return "ldstack_dw";
    case Op::kStStackDw: return "ststack_dw";
    case Op::kCall: return "call";
    case Op::kJa: return "ja";
    case Op::kJeqImm: return "jeq_imm";
    case Op::kJeqReg: return "jeq_reg";
    case Op::kJneImm: return "jne_imm";
    case Op::kJneReg: return "jne_reg";
    case Op::kJgtImm: return "jgt_imm";
    case Op::kJgtReg: return "jgt_reg";
    case Op::kJgeImm: return "jge_imm";
    case Op::kJgeReg: return "jge_reg";
    case Op::kJltImm: return "jlt_imm";
    case Op::kJltReg: return "jlt_reg";
    case Op::kExit: return "exit";
  }
  return "?";
}

std::string to_string(XdpVerdict v) {
  switch (v) {
    case XdpVerdict::kAborted: return "XDP_ABORTED";
    case XdpVerdict::kDrop: return "XDP_DROP";
    case XdpVerdict::kPass: return "XDP_PASS";
    case XdpVerdict::kTx: return "XDP_TX";
  }
  return "?";
}

std::string disassemble(const Insn& insn) {
  std::ostringstream os;
  os << to_string(insn.op) << " dst=r" << int(insn.dst) << " src=r"
     << int(insn.src) << " off=" << insn.off << " imm=" << insn.imm;
  return os.str();
}

}  // namespace steelnet::ebpf
