#include "tsn/gcl.hpp"

#include <stdexcept>

namespace steelnet::tsn {

GateControlList::GateControlList(std::vector<GateEntry> entries,
                                 sim::SimTime base_offset)
    : entries_(std::move(entries)), base_offset_(base_offset) {
  if (entries_.empty()) {
    throw std::invalid_argument("GateControlList: no entries");
  }
  sim::SimTime total = sim::SimTime::zero();
  for (const auto& e : entries_) {
    if (e.duration <= sim::SimTime::zero()) {
      throw std::invalid_argument("GateControlList: non-positive duration");
    }
    starts_.push_back(total);
    total += e.duration;
  }
  cycle_ = total;
}

sim::SimTime GateControlList::phase(sim::SimTime t) const {
  sim::SimTime p = (t - base_offset_) % cycle_;
  if (p < sim::SimTime::zero()) p += cycle_;
  return p;
}

std::pair<std::size_t, sim::SimTime> GateControlList::locate(
    sim::SimTime p) const {
  // Linear scan: GCLs in practice have a handful of entries.
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (p >= starts_[i]) return {i, p - starts_[i]};
  }
  return {0, p};
}

bool GateControlList::gate_open(std::uint8_t pcp, sim::SimTime t) const {
  const auto [idx, off] = locate(phase(t));
  (void)off;
  return (entries_[idx].gate_mask >> (pcp & 7)) & 1;
}

sim::SimTime GateControlList::open_run_from(std::uint8_t pcp,
                                            sim::SimTime t) const {
  if (!gate_open(pcp, t)) return sim::SimTime::zero();
  auto [idx, off] = locate(phase(t));
  sim::SimTime run = entries_[idx].duration - off;
  // Extend across consecutive open entries, at most one full cycle.
  std::size_t i = (idx + 1) % entries_.size();
  while (run < cycle_ && ((entries_[i].gate_mask >> (pcp & 7)) & 1)) {
    run += entries_[i].duration;
    i = (i + 1) % entries_.size();
    if (i == (idx + 1) % entries_.size() && run >= cycle_) break;
  }
  return run < cycle_ ? run : cycle_;
}

bool GateControlList::can_start(std::uint8_t pcp, sim::SimTime now,
                                sim::SimTime duration) const {
  return open_run_from(pcp, now) >= duration;
}

sim::SimTime GateControlList::next_opportunity(std::uint8_t pcp,
                                               sim::SimTime now,
                                               sim::SimTime duration) const {
  // Scan entry boundaries over the next two cycles; the answer, if one
  // exists, is `now` itself or some entry start.
  if (can_start(pcp, now, duration)) return now;
  const sim::SimTime p = phase(now);
  const sim::SimTime cycle_start = now - p;
  for (int c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const sim::SimTime cand =
          cycle_start + cycle_ * c + starts_[i];
      if (cand <= now) continue;
      if (can_start(pcp, cand, duration)) return cand;
    }
  }
  // Gate never opens long enough for this frame: report "one cycle out"
  // so the caller re-checks rather than spinning; the frame is
  // effectively unschedulable.
  return now + cycle_;
}

GateControlList make_protected_window_gcl(sim::SimTime cycle,
                                          sim::SimTime rt_window,
                                          std::uint8_t rt_pcp,
                                          sim::SimTime base_offset) {
  if (rt_window >= cycle) {
    throw std::invalid_argument("protected window must be < cycle");
  }
  std::vector<GateEntry> entries{
      {rt_window, gates_at_or_above(rt_pcp)},
      {cycle - rt_window, kAllGatesOpen},
  };
  return GateControlList{std::move(entries), base_offset};
}

}  // namespace steelnet::tsn
