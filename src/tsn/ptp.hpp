// steelnet::tsn -- a PTP (IEEE 1588) clock-synchronization error model.
//
// The paper's Traffic Reflection methodology exists precisely because
// two-clock measurements inherit PTP's residual error: sub-microsecond in
// the best case, but degraded by asymmetric path delays and network
// inconsistencies (§3). This model quantifies that error so the
// single-clock-TAP ablation can show what a naive setup would measure.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace steelnet::tsn {

struct PtpConfig {
  /// Interval between sync message exchanges.
  sim::SimTime sync_interval = sim::milliseconds(125);
  /// Local oscillator frequency error, parts per billion (drift between
  /// syncs accumulates as drift_ppb * elapsed / 1e9).
  double drift_ppb = 10.0;
  /// Std-dev of the residual offset right after a servo update.
  sim::SimTime servo_noise = sim::nanoseconds(30);
  /// Constant error from asymmetric forward/reverse path delays; PTP
  /// cannot observe this, so it biases every timestamp.
  sim::SimTime path_asymmetry = sim::nanoseconds(0);
};

/// A slave clock disciplined to the (perfect) simulation grandmaster.
class PtpClock {
 public:
  PtpClock(PtpConfig cfg, std::uint64_t seed);

  /// Local reading of true time `t`. Monotonic in t between syncs.
  [[nodiscard]] sim::SimTime read(sim::SimTime t) const;

  /// Current offset (local - true) at true time `t`.
  [[nodiscard]] sim::SimTime offset_at(sim::SimTime t) const;

  /// Advances the servo through all sync points up to `t`. Call with
  /// non-decreasing times.
  void advance_to(sim::SimTime t);

  [[nodiscard]] const PtpConfig& config() const { return cfg_; }

 private:
  PtpConfig cfg_;
  sim::Rng rng_;
  sim::SimTime last_sync_ = sim::SimTime::zero();
  sim::SimTime offset_at_sync_ = sim::SimTime::zero();
};

/// The TAP's own quantized timestamping (8 ns in the paper's hardware).
class QuantizedTimestamper {
 public:
  explicit QuantizedTimestamper(sim::SimTime resolution);
  [[nodiscard]] sim::SimTime stamp(sim::SimTime t) const;
  [[nodiscard]] sim::SimTime resolution() const { return resolution_; }

 private:
  sim::SimTime resolution_;
};

}  // namespace steelnet::tsn
