// steelnet::tsn -- IEEE 802.1Qbv time-aware shaping.
//
// A GateControlList divides a repeating cycle into entries; each entry
// opens a subset of the eight priority gates. A frame may start only if
// its gate stays open for the frame's entire wire time (the implicit
// guard band), which is what gives scheduled traffic exclusive windows.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace steelnet::tsn {

/// One row of a gate control list.
struct GateEntry {
  sim::SimTime duration;
  std::uint8_t gate_mask;  ///< bit i set = priority-i gate open
};

constexpr std::uint8_t kAllGatesOpen = 0xff;

/// Gate mask with only priorities >= `pcp` open.
[[nodiscard]] constexpr std::uint8_t gates_at_or_above(std::uint8_t pcp) {
  return static_cast<std::uint8_t>(0xff << pcp);
}

class GateControlList final : public net::GateController {
 public:
  /// `entries` must be non-empty with positive durations; the cycle time
  /// is their sum. `base_offset` shifts the cycle origin (all switches in
  /// a TSN domain share a synchronized epoch).
  GateControlList(std::vector<GateEntry> entries,
                  sim::SimTime base_offset = sim::SimTime::zero());

  [[nodiscard]] bool can_start(std::uint8_t pcp, sim::SimTime now,
                               sim::SimTime duration) const override;
  [[nodiscard]] sim::SimTime next_opportunity(
      std::uint8_t pcp, sim::SimTime now,
      sim::SimTime duration) const override;

  [[nodiscard]] sim::SimTime cycle_time() const { return cycle_; }
  [[nodiscard]] const std::vector<GateEntry>& entries() const {
    return entries_;
  }

  /// True if the priority-`pcp` gate is open at instant `t`.
  [[nodiscard]] bool gate_open(std::uint8_t pcp, sim::SimTime t) const;

  /// Length of the contiguous open window for `pcp` starting at `t`
  /// (zero if the gate is closed at `t`); capped at one cycle.
  [[nodiscard]] sim::SimTime open_run_from(std::uint8_t pcp,
                                           sim::SimTime t) const;

 private:
  /// Position of instant `t` within the cycle.
  [[nodiscard]] sim::SimTime phase(sim::SimTime t) const;
  /// Index of the entry active at cycle-phase `p`, plus offset within it.
  [[nodiscard]] std::pair<std::size_t, sim::SimTime> locate(
      sim::SimTime p) const;

  std::vector<GateEntry> entries_;
  std::vector<sim::SimTime> starts_;  ///< entry start phases (prefix sums)
  sim::SimTime cycle_;
  sim::SimTime base_offset_;
};

/// Convenience: a two-entry GCL giving priorities >= `rt_pcp` an exclusive
/// window of `rt_window` at the start of every `cycle`, with the remainder
/// open to everything (a "protected window" schedule).
[[nodiscard]] GateControlList make_protected_window_gcl(
    sim::SimTime cycle, sim::SimTime rt_window, std::uint8_t rt_pcp = 6,
    sim::SimTime base_offset = sim::SimTime::zero());

}  // namespace steelnet::tsn
