#include "tsn/ptp.hpp"

#include <stdexcept>

namespace steelnet::tsn {

PtpClock::PtpClock(PtpConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  if (cfg_.sync_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument("PtpClock: sync interval must be positive");
  }
  // Initial servo state: one residual sample plus the asymmetry bias.
  offset_at_sync_ =
      sim::SimTime{static_cast<std::int64_t>(
          rng_.normal(0.0, double(cfg_.servo_noise.nanos())))} +
      cfg_.path_asymmetry;
}

void PtpClock::advance_to(sim::SimTime t) {
  while (last_sync_ + cfg_.sync_interval <= t) {
    last_sync_ += cfg_.sync_interval;
    offset_at_sync_ =
        sim::SimTime{static_cast<std::int64_t>(
            rng_.normal(0.0, double(cfg_.servo_noise.nanos())))} +
        cfg_.path_asymmetry;
  }
}

sim::SimTime PtpClock::offset_at(sim::SimTime t) const {
  const sim::SimTime since_sync = t - last_sync_;
  const auto drift_ns = static_cast<std::int64_t>(
      cfg_.drift_ppb * double(since_sync.nanos()) / 1e9);
  return offset_at_sync_ + sim::SimTime{drift_ns};
}

sim::SimTime PtpClock::read(sim::SimTime t) const {
  return t + offset_at(t);
}

QuantizedTimestamper::QuantizedTimestamper(sim::SimTime resolution)
    : resolution_(resolution) {
  if (resolution <= sim::SimTime::zero()) {
    throw std::invalid_argument("QuantizedTimestamper: bad resolution");
  }
}

sim::SimTime QuantizedTimestamper::stamp(sim::SimTime t) const {
  return sim::SimTime{(t.nanos() / resolution_.nanos()) *
                      resolution_.nanos()};
}

}  // namespace steelnet::tsn
