#include "tsn/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "net/frame.hpp"

namespace steelnet::tsn {

namespace {

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  return a / std::gcd(a, b) * b;
}

/// Half-open interval [start, end) on a port, modulo hyperperiod.
struct Window {
  std::int64_t start;
  std::int64_t end;
};

bool overlaps(const Window& a, const Window& b) {
  return a.start < b.end && b.start < a.end;
}

}  // namespace

std::optional<FlowSchedule> ScheduleResult::find(std::uint64_t flow_id) const {
  for (const auto& f : flows) {
    if (f.flow_id == flow_id) return f;
  }
  return std::nullopt;
}

ScheduleResult schedule_flows(const std::vector<FlowSpec>& flows,
                              const SchedulerConfig& cfg) {
  ScheduleResult result;
  if (flows.empty()) {
    result.hyperperiod = sim::SimTime::zero();
    return result;
  }
  for (const auto& f : flows) {
    if (f.period <= sim::SimTime::zero()) {
      throw std::invalid_argument("schedule_flows: non-positive period");
    }
    if (f.path.empty()) {
      throw std::invalid_argument("schedule_flows: empty path");
    }
  }

  std::int64_t hyper = 1;
  for (const auto& f : flows) hyper = lcm64(hyper, f.period.nanos());
  result.hyperperiod = sim::SimTime{hyper};

  // Rate-monotonic placement order (stable by flow id).
  std::vector<const FlowSpec*> order;
  order.reserve(flows.size());
  for (const auto& f : flows) order.push_back(&f);
  std::sort(order.begin(), order.end(), [](const FlowSpec* a,
                                           const FlowSpec* b) {
    if (a->period != b->period) return a->period < b->period;
    return a->flow_id < b->flow_id;
  });

  // Reserved windows per port, expanded over the hyperperiod.
  std::map<std::uint64_t, std::vector<Window>> busy;

  for (const FlowSpec* f : order) {
    const sim::SimTime wire =
        net::serialization_time(f->frame_bytes, cfg.link_bits_per_second);
    const std::int64_t reps = hyper / f->period.nanos();
    const std::int64_t step = std::max<std::int64_t>(
        cfg.granularity.nanos(), 1);

    bool placed = false;
    for (std::int64_t offset = 0; offset + wire.nanos() <= f->period.nanos();
         offset += step) {
      bool ok = true;
      for (std::int64_t k = 0; ok && k < reps; ++k) {
        std::int64_t t = offset + k * f->period.nanos();
        for (std::size_t h = 0; ok && h < f->path.size(); ++h) {
          const std::int64_t hop_start =
              t + static_cast<std::int64_t>(h) * cfg.hop_latency.nanos();
          const Window w{hop_start % hyper,
                         hop_start % hyper + wire.nanos()};
          for (const Window& existing : busy[f->path[h]]) {
            // Compare both the window and its wrap-around image.
            Window w2 = w;
            if (overlaps(existing, w2) ||
                overlaps(existing, Window{w2.start - hyper, w2.end - hyper}) ||
                overlaps(existing, Window{w2.start + hyper, w2.end + hyper})) {
              ok = false;
              break;
            }
          }
        }
      }
      if (!ok) continue;

      // Commit.
      for (std::int64_t k = 0; k < reps; ++k) {
        const std::int64_t t = offset + k * f->period.nanos();
        for (std::size_t h = 0; h < f->path.size(); ++h) {
          const std::int64_t hop_start =
              t + static_cast<std::int64_t>(h) * cfg.hop_latency.nanos();
          const std::int64_t s = hop_start % hyper;
          busy[f->path[h]].push_back(Window{s, s + wire.nanos()});
          result.reservations.push_back(PortReservation{
              f->path[h], sim::SimTime{s}, sim::SimTime{s + wire.nanos()},
              f->flow_id});
        }
      }
      result.flows.push_back(
          FlowSchedule{f->flow_id, sim::SimTime{offset}, f->period, wire});
      placed = true;
      break;
    }
    if (!placed) result.unschedulable.push_back(f->flow_id);
  }

  std::sort(result.flows.begin(), result.flows.end(),
            [](const FlowSchedule& a, const FlowSchedule& b) {
              return a.flow_id < b.flow_id;
            });
  return result;
}

std::optional<std::string> validate_schedule(const ScheduleResult& result) {
  std::map<std::uint64_t, std::vector<Window>> per_port;
  for (const auto& r : result.reservations) {
    per_port[r.port_key].push_back(Window{r.start.nanos(), r.end.nanos()});
  }
  for (auto& [port, windows] : per_port) {
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < windows.size(); ++i) {
      if (windows[i].start < windows[i - 1].end) {
        return "overlap on port " + std::to_string(port) + " at " +
               std::to_string(windows[i].start) + " ns";
      }
    }
    // Wrap-around: last window vs first window of the next hyperperiod.
    if (windows.size() >= 2 && result.hyperperiod > sim::SimTime::zero()) {
      if (windows.back().end > result.hyperperiod.nanos() &&
          windows.back().end - result.hyperperiod.nanos() >
              windows.front().start) {
        return "wrap-around overlap on port " + std::to_string(port);
      }
    }
  }
  return std::nullopt;
}

}  // namespace steelnet::tsn
