// steelnet::tsn -- no-wait schedule synthesis for periodic flows.
//
// TSN lets operators run "arbitrary scheduling algorithms that define
// pre-computed transmission schedules for pre-defined flows" (§1.1).
// This synthesizer implements the classic no-wait heuristic: each flow
// gets a per-period start offset such that its frame's transmission
// window never collides with another scheduled frame on any shared port.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::tsn {

/// A pre-defined periodic flow to be scheduled.
struct FlowSpec {
  std::uint64_t flow_id = 0;
  sim::SimTime period;
  std::size_t frame_bytes = 64;  ///< wire bytes incl. overhead
  /// Ports the frame traverses, in order. Port identity is opaque to the
  /// scheduler -- callers typically encode (switch_id << 16) | port.
  std::vector<std::uint64_t> path;
  std::uint8_t pcp = 7;
};

/// A scheduled flow: transmission starts at offset + k * period.
struct FlowSchedule {
  std::uint64_t flow_id = 0;
  sim::SimTime offset;
  sim::SimTime period;
  sim::SimTime wire_time;  ///< per-hop transmission duration
};

/// A reserved window on one port, repeating every `hyperperiod`.
struct PortReservation {
  std::uint64_t port_key = 0;
  sim::SimTime start;
  sim::SimTime end;
  std::uint64_t flow_id = 0;
};

struct ScheduleResult {
  std::vector<FlowSchedule> flows;
  std::vector<PortReservation> reservations;
  sim::SimTime hyperperiod;
  /// Flows that could not be placed (over-subscribed ports).
  std::vector<std::uint64_t> unschedulable;

  [[nodiscard]] std::optional<FlowSchedule> find(std::uint64_t flow_id) const;
};

struct SchedulerConfig {
  std::uint64_t link_bits_per_second = 1'000'000'000;
  /// Per-hop forwarding latency between a frame's windows on successive
  /// ports (switch processing + propagation).
  sim::SimTime hop_latency = sim::nanoseconds(1'100);
  /// Offset search granularity. Smaller = tighter packing, slower search.
  sim::SimTime granularity = sim::microseconds(1);
};

/// Greedy no-wait scheduler. Flows are placed shortest-period-first
/// (rate-monotonic order); within each flow the smallest feasible offset
/// wins, so results are deterministic.
ScheduleResult schedule_flows(const std::vector<FlowSpec>& flows,
                              const SchedulerConfig& cfg = {});

/// Validates a result: no two reservations on the same port overlap when
/// expanded over the hyperperiod. Returns a human-readable error or
/// nullopt if consistent. (Used by tests and as a post-synthesis check.)
std::optional<std::string> validate_schedule(const ScheduleResult& result);

}  // namespace steelnet::tsn
