// steelnet::mlnet -- the Fig. 6 inference-latency experiment.
//
// Clients ship accuracy-dimensioned frames to their assigned inference
// server; servers run a bounded pool of workers; the report is the
// client-observed request->response latency distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mlnet/topologies.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace steelnet::mlnet {

/// An inference endpoint bound to a server HostNode.
class InferenceServer {
 public:
  InferenceServer(net::HostNode& host, MlWorkloadParams params);

  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t queue_peak() const { return queue_peak_; }
  [[nodiscard]] net::HostNode& host() { return host_; }

 private:
  void on_request(net::Frame frame, sim::SimTime at);

  net::HostNode& host_;
  MlWorkloadParams params_;
  std::vector<sim::SimTime> worker_free_at_;
  std::uint64_t served_ = 0;
  std::uint64_t queue_peak_ = 0;
};

/// A camera/PLC client issuing periodic inference requests.
class InferenceClient {
 public:
  InferenceClient(net::HostNode& host, net::MacAddress server,
                  MlWorkloadParams params, std::size_t request_bytes,
                  std::uint64_t client_id, sim::SimTime start_offset);

  void stop();
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] const sim::SampleSet& latency_ms() const {
    return latency_ms_;
  }

 private:
  void send_request();
  void on_response(net::Frame frame, sim::SimTime at);

  net::HostNode& host_;
  net::MacAddress server_;
  MlWorkloadParams params_;
  std::size_t request_bytes_;
  std::uint64_t client_id_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::map<std::uint64_t, sim::SimTime> in_flight_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  sim::SampleSet latency_ms_;
};

struct InferenceConfig {
  TopologyKind topology = TopologyKind::kRing;
  MlApp app = MlApp::kObjectIdentification;
  std::size_t clients = 32;
  sim::SimTime duration = sim::seconds(2);
  double target_accuracy = 0.95;
  MlTopologyOptions topo;
  std::uint64_t seed = 1;
};

struct InferenceReport {
  std::string topology;
  std::string app;
  std::size_t clients = 0;
  sim::SampleSet latency_ms;  ///< all clients pooled
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::size_t switches = 0;   ///< infrastructure cost proxies
  std::size_t servers = 0;
  std::size_t frame_bytes = 0;
};

/// Builds the topology, runs the workload, returns pooled latencies.
InferenceReport run_inference_experiment(const InferenceConfig& config);

}  // namespace steelnet::mlnet
