#include "mlnet/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace steelnet::mlnet {

std::string to_string(MlApp app) {
  switch (app) {
    case MlApp::kObjectIdentification: return "Object Identification";
    case MlApp::kDefectDetection: return "Defect Detection";
  }
  return "?";
}

std::vector<MlApp> all_ml_apps() {
  return {MlApp::kObjectIdentification, MlApp::kDefectDetection};
}

std::string to_string(Corruption c) {
  switch (c) {
    case Corruption::kCompression: return "compression";
    case Corruption::kFrameLoss: return "frame-loss";
    case Corruption::kJitter: return "jitter";
  }
  return "?";
}

double clean_accuracy(MlApp app) {
  switch (app) {
    case MlApp::kObjectIdentification:
      return 0.985;
    case MlApp::kDefectDetection:
      return 0.957;  // casting dataset, pretrained [29]
  }
  return 0.0;
}

namespace {

/// Logistic fall-off: plateau until `knee`, then decay with `steepness`,
/// floored at `floor` (random-guess performance).
double falloff(double clean, double floor, double knee, double steepness,
               double severity) {
  severity = std::clamp(severity, 0.0, 1.0);
  const double x = (severity - knee) * steepness;
  const double s = 1.0 / (1.0 + std::exp(-x));
  // At severity 0 (x very negative) s ~ 0 -> clean; at 1 -> floor-ish.
  return clean - (clean - floor) * s;
}

struct CurveParams {
  double floor, knee, steepness;
};

CurveParams curve(MlApp app, Corruption c) {
  // Defect detection's fine-grained features die earlier (smaller knee,
  // steeper slope) for every corruption -- the [85] finding.
  const bool defect = app == MlApp::kDefectDetection;
  switch (c) {
    case Corruption::kCompression:
      // Knees sit near full compression: industrial JPEG pipelines shed
      // >90% of raw bytes before features start to degrade, and defect
      // detection's knee comes earlier (needs more bytes).
      return defect ? CurveParams{0.52, 0.93, 60.0}
                    : CurveParams{0.55, 0.97, 80.0};
    case Corruption::kFrameLoss:
      return defect ? CurveParams{0.45, 0.25, 10.0}
                    : CurveParams{0.52, 0.40, 10.0};
    case Corruption::kJitter:
      return defect ? CurveParams{0.60, 0.35, 8.0}
                    : CurveParams{0.65, 0.50, 8.0};
  }
  return {0.5, 0.5, 10.0};
}

}  // namespace

double accuracy(MlApp app, Corruption c, double severity) {
  const CurveParams p = curve(app, c);
  const double clean = clean_accuracy(app);
  // Anchor so that accuracy(0) == clean exactly.
  const double raw = falloff(clean, p.floor, p.knee, p.steepness, severity);
  const double at_zero = falloff(clean, p.floor, p.knee, p.steepness, 0.0);
  return raw + (clean - at_zero);
}

MlWorkloadParams workload_params(MlApp app) {
  MlWorkloadParams p;
  p.app = app;
  switch (app) {
    case MlApp::kObjectIdentification:
      p.raw_frame_bytes = 512 * 1024;  // VGA-ish frame
      p.fps = 10.0;
      p.service_ns = 200'000;  // light detector
      break;
    case MlApp::kDefectDetection:
      p.raw_frame_bytes = 512 * 1024;  // high-res inspection crop
      p.fps = 10.0;
      p.service_ns = 350'000;  // heavier classifier
      break;
  }
  return p;
}

std::size_t required_frame_bytes(MlApp app, double target_accuracy) {
  if (target_accuracy > clean_accuracy(app)) {
    throw std::invalid_argument("required_frame_bytes: target " +
                                std::to_string(target_accuracy) +
                                " exceeds clean accuracy of " +
                                to_string(app));
  }
  const auto params = workload_params(app);
  // Binary-search the largest compression severity that still meets the
  // target (accuracy is monotone non-increasing in severity).
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2;
    if (accuracy(app, Corruption::kCompression, mid) >= target_accuracy) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double severity = lo;
  const auto bytes = static_cast<std::size_t>(
      std::ceil(double(params.raw_frame_bytes) * (1.0 - severity)));
  return std::max<std::size_t>(bytes, 1024);
}

double client_offered_bps(MlApp app, double target_accuracy) {
  const auto params = workload_params(app);
  return double(required_frame_bytes(app, target_accuracy)) * 8.0 *
         params.fps;
}

}  // namespace steelnet::mlnet
