#include "mlnet/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace steelnet::mlnet {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRing: return "Ring";
    case TopologyKind::kLeafSpine: return "Leaf Spine";
    case TopologyKind::kMlAware: return "ML-aware";
  }
  return "?";
}

std::vector<TopologyKind> all_topologies() {
  return {TopologyKind::kRing, TopologyKind::kLeafSpine,
          TopologyKind::kMlAware};
}

MlAwarePlan plan_ml_aware(MlApp app, std::size_t n_clients,
                          double target_accuracy,
                          std::uint64_t edge_link_bps,
                          double target_utilization) {
  if (n_clients == 0) throw std::invalid_argument("plan_ml_aware: 0 clients");
  MlAwarePlan plan;
  plan.per_client_bps = client_offered_bps(app, target_accuracy);
  const double budget = double(edge_link_bps) * target_utilization;
  plan.clients_per_cell = std::max<std::size_t>(
      1, static_cast<std::size_t>(budget / plan.per_client_bps));
  // Also respect compute: a cell server must sustain the inference rate.
  const auto params = workload_params(app);
  const double per_client_cpu =
      params.fps * double(params.service_ns) / 1e9;
  const auto cpu_cap = static_cast<std::size_t>(
      double(params.server_workers) * target_utilization / per_client_cpu);
  plan.clients_per_cell = std::min(plan.clients_per_cell,
                                   std::max<std::size_t>(1, cpu_cap));
  plan.cells = (n_clients + plan.clients_per_cell - 1) /
               plan.clients_per_cell;
  plan.cell_load_bps = plan.per_client_bps * double(plan.clients_per_cell);
  return plan;
}

namespace {

net::NodeId add_host(net::Network& net, MlFabric& mf, const std::string& name,
                     net::NodeId sw, net::PortId port,
                     std::uint64_t bps) {
  const auto idx = static_cast<std::uint32_t>(mf.fabric.hosts.size());
  auto& h = net.add_node<net::HostNode>(name, net::host_mac(idx));
  net.connect(h.id(), net::HostNode::kNicPort, sw, port,
              net::LinkParams{bps, sim::nanoseconds(500)});
  mf.fabric.hosts.push_back(h.id());
  return h.id();
}

net::NodeId add_switch(net::Network& net, MlFabric& mf,
                       const std::string& name) {
  net::SwitchConfig cfg;
  cfg.mac_learning = false;
  auto& sw = net.add_node<net::SwitchNode>(name, cfg);
  mf.fabric.switches.push_back(sw.id());
  return sw.id();
}

}  // namespace

MlFabric build_ml_topology(net::Network& network, TopologyKind kind,
                           MlApp app, std::size_t n_clients,
                           MlTopologyOptions opt) {
  if (n_clients == 0) {
    throw std::invalid_argument("build_ml_topology: 0 clients");
  }
  MlFabric mf;
  mf.fabric.net = &network;
  const net::LinkParams trunk{opt.trunk_bps, sim::nanoseconds(500)};

  switch (kind) {
    case TopologyKind::kRing: {
      // n switches in a ring; clients spread around; one server rack
      // (2 servers for HA realism) on switch 0.
      const std::size_t n_sw =
          std::min<std::size_t>(opt.ring_switches,
                                std::max<std::size_t>(3, n_clients));
      std::vector<net::NodeId> sws;
      for (std::size_t i = 0; i < n_sw; ++i) {
        sws.push_back(add_switch(network, mf, "ring-sw" + std::to_string(i)));
      }
      for (std::size_t i = 0; i < n_sw; ++i) {
        network.connect(sws[i], 1, sws[(i + 1) % n_sw], 0, trunk);
      }
      // Server on switch 0, port 2.
      mf.servers.push_back(add_host(network, mf, "server-0", sws[0], 2,
                                    opt.server_bps));
      // Clients on ports 3.. of each switch, round-robin.
      std::vector<net::PortId> next_port(n_sw, 3);
      for (std::size_t c = 0; c < n_clients; ++c) {
        const std::size_t s = c % n_sw;
        mf.clients.push_back(add_host(network, mf,
                                      "client-" + std::to_string(c), sws[s],
                                      next_port[s]++, opt.access_bps));
        mf.client_server.push_back(0);
      }
      break;
    }

    case TopologyKind::kLeafSpine: {
      std::vector<net::NodeId> spines, leaves;
      for (std::size_t s = 0; s < opt.spines; ++s) {
        spines.push_back(add_switch(network, mf, "spine" + std::to_string(s)));
      }
      for (std::size_t l = 0; l < opt.leaves; ++l) {
        leaves.push_back(add_switch(network, mf, "leaf" + std::to_string(l)));
      }
      for (std::size_t l = 0; l < opt.leaves; ++l) {
        for (std::size_t s = 0; s < opt.spines; ++s) {
          network.connect(leaves[l], static_cast<net::PortId>(s), spines[s],
                          static_cast<net::PortId>(l), trunk);
        }
      }
      // Servers on leaf 0 (the "server rack" leaf): two for capacity.
      const auto first_port = static_cast<net::PortId>(opt.spines);
      mf.servers.push_back(add_host(network, mf, "server-0", leaves[0],
                                    first_port, opt.server_bps));
      mf.servers.push_back(add_host(network, mf, "server-1", leaves[0],
                                    static_cast<net::PortId>(first_port + 1),
                                    opt.server_bps));
      // Clients on the remaining leaves.
      std::vector<net::PortId> next_port(opt.leaves,
                                         static_cast<net::PortId>(
                                             first_port + 2));
      for (std::size_t c = 0; c < n_clients; ++c) {
        const std::size_t l = 1 + (c % (opt.leaves - 1));
        mf.clients.push_back(add_host(network, mf,
                                      "client-" + std::to_string(c),
                                      leaves[l], next_port[l]++,
                                      opt.access_bps));
        mf.client_server.push_back(c % mf.servers.size());
      }
      break;
    }

    case TopologyKind::kMlAware: {
      // Traffic-aware: cells sized by the planner, each with its own
      // edge server one hop from its clients; cells joined by an
      // aggregation switch (inter-cell traffic is negligible by design).
      const MlAwarePlan plan = plan_ml_aware(app, n_clients,
                                             opt.target_accuracy,
                                             opt.edge_bps);
      const auto agg = add_switch(network, mf, "agg");
      std::size_t placed = 0;
      for (std::size_t cell = 0; cell < plan.cells; ++cell) {
        const auto sw = add_switch(network, mf,
                                   "cell" + std::to_string(cell));
        network.connect(sw, 0, agg, static_cast<net::PortId>(cell), trunk);
        const std::size_t server_idx = mf.servers.size();
        mf.servers.push_back(add_host(network, mf,
                                      "edge-" + std::to_string(cell), sw, 1,
                                      opt.edge_bps));
        net::PortId port = 2;
        for (std::size_t k = 0;
             k < plan.clients_per_cell && placed < n_clients;
             ++k, ++placed) {
          mf.clients.push_back(add_host(network, mf,
                                        "client-" + std::to_string(placed),
                                        sw, port++, opt.access_bps));
          mf.client_server.push_back(server_idx);
        }
      }
      break;
    }
  }

  mf.switches = mf.fabric.switches.size();
  mf.server_count = mf.servers.size();
  net::install_shortest_path_routes(mf.fabric);
  return mf;
}

}  // namespace steelnet::mlnet
