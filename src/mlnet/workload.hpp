// steelnet::mlnet -- ML inference workloads and the degradation model.
//
// §5: "The traffic input comes from analyzing ML models with degraded
// input data" -- ML inference in industrial settings suffers under
// network-induced degradation (compression artifacts, frame loss,
// jitter), especially for video-centric tasks. We model accuracy as a
// calibrated function of degradation severity per application; inverting
// the compression curve yields the frame size each client must ship to
// hit a target accuracy, which is what dimensions the network.
//
// Curve shapes follow the corruption-robustness literature (Hendrycks &
// Dietterich 2019 [53]; casting-defect benchmarking [29, 85]): accuracy
// plateaus at low severity and falls off steeply past a knee, with
// defect detection (fine-grained textures) more sensitive than object
// identification (coarse shapes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace steelnet::mlnet {

enum class MlApp : std::uint8_t {
  kObjectIdentification,
  kDefectDetection,
};

[[nodiscard]] std::string to_string(MlApp app);
[[nodiscard]] std::vector<MlApp> all_ml_apps();

enum class Corruption : std::uint8_t {
  kCompression,  ///< severity = 1 - (bytes / raw frame bytes)
  kFrameLoss,    ///< severity = loss fraction
  kJitter,       ///< severity = stddev / frame interval
};

[[nodiscard]] std::string to_string(Corruption c);

/// Clean-input accuracy of the (pretrained, per [29]) model.
[[nodiscard]] double clean_accuracy(MlApp app);

/// Accuracy under one corruption at severity in [0, 1]. Monotone
/// non-increasing in severity; equals clean_accuracy at severity 0.
[[nodiscard]] double accuracy(MlApp app, Corruption c, double severity);

/// Per-application workload parameters.
struct MlWorkloadParams {
  MlApp app = MlApp::kObjectIdentification;
  std::size_t raw_frame_bytes = 0;   ///< uncompressed camera frame
  std::size_t response_bytes = 256;  ///< inference verdict
  double fps = 10.0;                 ///< requests per second per client
  /// Per-inference service time at a server worker, nanoseconds.
  std::int64_t service_ns = 0;
  std::size_t server_workers = 4;    ///< parallel inference workers
};

[[nodiscard]] MlWorkloadParams workload_params(MlApp app);

/// Smallest compressed frame (bytes) that still achieves `target_accuracy`
/// under compression. Throws std::invalid_argument when the target
/// exceeds the clean accuracy.
[[nodiscard]] std::size_t required_frame_bytes(MlApp app,
                                               double target_accuracy);

/// Offered load of one client in bits per second at `target_accuracy`.
[[nodiscard]] double client_offered_bps(MlApp app, double target_accuracy);

}  // namespace steelnet::mlnet
