// steelnet::mlnet -- the three Fig. 6 topologies and the traffic-aware
// planner behind the ML-aware one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mlnet/workload.hpp"
#include "net/topology.hpp"

namespace steelnet::mlnet {

enum class TopologyKind : std::uint8_t {
  kRing,       ///< classic industrial ring, one central server rack
  kLeafSpine,  ///< IT-style two-tier fabric, servers on one leaf
  kMlAware,    ///< traffic-aware cells with dimensioned edge servers
};

[[nodiscard]] std::string to_string(TopologyKind kind);
[[nodiscard]] std::vector<TopologyKind> all_topologies();

/// The built experiment network: client hosts and the server each client
/// should address.
struct MlFabric {
  net::Fabric fabric;
  std::vector<net::NodeId> clients;
  std::vector<net::NodeId> servers;
  /// servers index assigned to each client (same order as clients).
  std::vector<std::size_t> client_server;
  /// Rough capex: switch count + server count (for the cost discussion).
  std::size_t switches = 0;
  std::size_t server_count = 0;
};

/// Output of the traffic-aware planner: how many clients share one edge
/// server/cell so that no link or server exceeds `target_utilization`.
struct MlAwarePlan {
  std::size_t clients_per_cell = 0;
  std::size_t cells = 0;
  double per_client_bps = 0;
  double cell_load_bps = 0;
};

/// §5: "The preliminary design aligns inference accuracy with
/// infrastructure cost and network dimensioning" -- computes the cell
/// size from the accuracy-driven per-client load.
[[nodiscard]] MlAwarePlan plan_ml_aware(MlApp app, std::size_t n_clients,
                                        double target_accuracy,
                                        std::uint64_t edge_link_bps,
                                        double target_utilization = 0.6);

struct MlTopologyOptions {
  std::uint64_t access_bps = 1'000'000'000;   ///< client links
  std::uint64_t trunk_bps = 1'000'000'000;    ///< switch-switch links
  std::uint64_t server_bps = 10'000'000'000;  ///< central server NICs
  std::uint64_t edge_bps = 1'000'000'000;     ///< ML-aware edge servers
  std::size_t ring_switches = 16;
  std::size_t spines = 4;
  std::size_t leaves = 8;
  double target_accuracy = 0.95;
};

/// Builds the requested topology with `n_clients` clients and installs
/// routes. Clients are net::HostNode, servers too; application wiring is
/// the caller's business (see inference.hpp).
MlFabric build_ml_topology(net::Network& network, TopologyKind kind,
                           MlApp app, std::size_t n_clients,
                           MlTopologyOptions opt = {});

}  // namespace steelnet::mlnet
