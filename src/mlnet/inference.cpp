#include "mlnet/inference.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace steelnet::mlnet {

using namespace steelnet::sim::literals;

InferenceServer::InferenceServer(net::HostNode& host,
                                 MlWorkloadParams params)
    : host_(host),
      params_(params),
      worker_free_at_(std::max<std::size_t>(1, params.server_workers),
                      sim::SimTime::zero()) {
  host_.set_receiver([this](net::Frame f, sim::SimTime at) {
    on_request(std::move(f), at);
  });
}

void InferenceServer::on_request(net::Frame frame, sim::SimTime at) {
  const net::MacAddress requester = frame.src;
  const std::uint64_t flow_id = frame.flow_id;
  const std::uint64_t seq = frame.seq;
  host_.network().frame_pool().recycle(std::move(frame));
  // Earliest-free worker; FIFO within the pool.
  auto it = std::min_element(worker_free_at_.begin(), worker_free_at_.end());
  const sim::SimTime start = std::max(at, *it);
  const sim::SimTime done = start + sim::SimTime{params_.service_ns};
  *it = done;
  const std::size_t backlog = static_cast<std::size_t>(
      std::count_if(worker_free_at_.begin(), worker_free_at_.end(),
                    [at](sim::SimTime t) { return t > at; }));
  queue_peak_ = std::max(queue_peak_, backlog);
  ++served_;

  net::Frame resp = host_.network().frame_pool().make(params_.response_bytes);
  resp.dst = requester;
  resp.src = host_.mac();
  resp.flow_id = flow_id;
  resp.seq = seq;
  host_.network().sim().schedule_at(
      done, [this, r = std::move(resp)]() mutable {
        host_.send(std::move(r));
      });
}

InferenceClient::InferenceClient(net::HostNode& host, net::MacAddress server,
                                 MlWorkloadParams params,
                                 std::size_t request_bytes,
                                 std::uint64_t client_id,
                                 sim::SimTime start_offset)
    : host_(host),
      server_(server),
      params_(params),
      request_bytes_(request_bytes),
      client_id_(client_id) {
  host_.set_receiver([this](net::Frame f, sim::SimTime at) {
    on_response(std::move(f), at);
  });
  const auto period = sim::SimTime{
      static_cast<std::int64_t>(1e9 / params_.fps)};
  task_ = std::make_unique<sim::PeriodicTask>(
      host_.network().sim(), start_offset, period, [this] { send_request(); });
}

void InferenceClient::stop() {
  if (task_) task_->stop();
}

void InferenceClient::send_request() {
  net::Frame f = host_.network().frame_pool().make(request_bytes_);
  f.dst = server_;
  f.src = host_.mac();
  f.flow_id = client_id_;
  f.seq = seq_++;
  in_flight_[f.seq] = host_.network().sim().now();
  ++sent_;
  host_.send(std::move(f));
}

void InferenceClient::on_response(net::Frame frame, sim::SimTime at) {
  const std::uint64_t seq = frame.seq;
  host_.network().frame_pool().recycle(std::move(frame));
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  latency_ms_.add((at - it->second).millis());
  in_flight_.erase(it);
  ++received_;
}

InferenceReport run_inference_experiment(const InferenceConfig& config) {
  sim::Simulator simulator;
  net::Network network{simulator};
  sim::Rng rng{config.seed};

  MlFabric mf = build_ml_topology(network, config.topology, config.app,
                                  config.clients, config.topo);

  const MlWorkloadParams params = workload_params(config.app);
  const std::size_t frame_bytes =
      required_frame_bytes(config.app, config.target_accuracy);

  std::vector<std::unique_ptr<InferenceServer>> servers;
  for (net::NodeId sid : mf.servers) {
    servers.push_back(std::make_unique<InferenceServer>(
        dynamic_cast<net::HostNode&>(network.node(sid)), params));
  }

  const auto period =
      sim::SimTime{static_cast<std::int64_t>(1e9 / params.fps)};
  std::vector<std::unique_ptr<InferenceClient>> clients;
  for (std::size_t c = 0; c < mf.clients.size(); ++c) {
    auto& chost = dynamic_cast<net::HostNode&>(network.node(mf.clients[c]));
    auto& shost = dynamic_cast<net::HostNode&>(
        network.node(mf.servers[mf.client_server[c]]));
    // Random phase: industrial cameras free-run, they are not barriered.
    const auto offset = sim::SimTime{
        rng.uniform_int(0, period.nanos() - 1)};
    clients.push_back(std::make_unique<InferenceClient>(
        chost, shost.mac(), params, frame_bytes, c, offset));
  }

  simulator.run_until(config.duration);
  for (auto& c : clients) c->stop();
  simulator.run_until(config.duration + 500_ms);  // drain in-flight

  InferenceReport report;
  report.topology = to_string(config.topology);
  report.app = to_string(config.app);
  report.clients = config.clients;
  report.switches = mf.switches;
  report.servers = mf.server_count;
  report.frame_bytes = frame_bytes;
  for (auto& c : clients) {
    report.requests += c->sent();
    report.responses += c->received();
    for (double v : c->latency_ms().raw()) report.latency_ms.add(v);
  }
  return report;
}

}  // namespace steelnet::mlnet
