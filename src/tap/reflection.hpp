// steelnet::tap -- the Traffic Reflection measurement harness (paper §3,
// Fig. 3): Sender --(1)--> TAP --> DUT running an XDP reflector --(2)-->
// TAP --> Sender. The tap stamps the frame on the way in and on the way
// back; their difference is the reflection delay, measured on a single
// clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ebpf/cost.hpp"
#include "ebpf/programs.hpp"
#include "sim/stats.hpp"
#include "tsn/ptp.hpp"

namespace steelnet::tap {

/// Cost parameters calibrated so the *magnitudes* land where the paper's
/// Fig. 4 reports them (no-ring-buffer variants ~10-13 us total
/// reflection delay, ring-buffer variants ~15-20 us, 1-flow jitter well
/// under 1 us, 25-flow jitter up to ~1 us). The defaults in CostParams
/// describe a generic JIT; the authors' testbed pays NIC/driver overheads
/// we fold into these larger per-helper figures.
[[nodiscard]] ebpf::CostParams fig4_calibrated_costs();

struct ReflectionConfig {
  ebpf::ReflectorVariant variant = ebpf::ReflectorVariant::kBase;
  /// Concurrent cyclic real-time flows through the same hook.
  std::size_t flows = 1;
  /// Packets measured on flow 0.
  std::size_t packets = 10'000;
  sim::SimTime cycle = sim::microseconds(500);
  std::size_t payload_bytes = 32;
  ebpf::CostParams costs = fig4_calibrated_costs();
  std::uint64_t seed = 1;
  /// When true, delays are additionally computed "the naive way" from
  /// two PTP-disciplined endpoint clocks, for the measurement-error
  /// ablation.
  bool with_ptp_comparison = false;
  tsn::PtpConfig ptp;
};

struct ReflectionReport {
  std::string variant;
  std::size_t flows = 0;
  /// Per-packet reflection delay (microseconds), tap-clock measured.
  sim::SampleSet delay_us;
  /// Cycle-to-cycle |delay_i - delay_{i-1}| (nanoseconds).
  sim::SampleSet jitter_ns;
  /// Delays as a two-PTP-clock setup would have measured them (us);
  /// empty unless with_ptp_comparison.
  sim::SampleSet ptp_delay_us;
  std::uint64_t frames_reflected = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t ringbuf_records = 0;
  std::uint64_t ringbuf_drops = 0;
};

/// Runs the full harness (builds network, sender, tap, DUT; attaches the
/// program; drives `packets` cycles) and returns the measurements.
ReflectionReport run_traffic_reflection(const ReflectionConfig& config);

}  // namespace steelnet::tap
