#include "tap/tap_node.hpp"

#include "net/network.hpp"

namespace steelnet::tap {

TapNode::TapNode(sim::SimTime timestamp_resolution,
                 sim::SimTime passthrough_latency)
    : stamper_(timestamp_resolution), passthrough_(passthrough_latency) {}

void TapNode::handle_frame(net::Frame frame, net::PortId in_port) {
  ++frames_seen_;
  log_.push_back(TapObservation{
      stamper_.stamp(network().sim().now()),
      in_port == kPortA ? TapDirection::kAtoB : TapDirection::kBtoA,
      frame.flow_id,
      frame.seq,
      frame.wire_bytes(),
  });
  const net::PortId out = in_port == kPortA ? kPortB : kPortA;
  // Passive pass-through: a fixed optical/electrical delay, then the
  // frame re-enters the wire. (The egress channel's serialization models
  // the tap's line-rate regeneration.)
  network().sim().schedule_in(
      passthrough_, [this, out, f = std::move(frame)]() mutable {
        if (network().channel_idle(id(), out)) {
          network().transmit(id(), out, std::move(f));
        } else {
          network().frame_pool().recycle(std::move(f));
        }
        // A tap that can't forward (busy monitor-side wire) would corrupt
        // the line; with symmetric rates this cannot happen in practice,
        // and dropping silently here would hide a topology bug, so the
        // frame is simply lost only if the channel is busy -- tests
        // assert frames_seen matches deliveries.
      });
}

std::optional<sim::SimTime> TapNode::find_stamp(std::uint64_t flow_id,
                                                std::uint64_t seq,
                                                TapDirection dir) const {
  for (const auto& o : log_) {
    if (o.flow_id == flow_id && o.seq == seq && o.direction == dir) {
      return o.stamp;
    }
  }
  return std::nullopt;
}

}  // namespace steelnet::tap
