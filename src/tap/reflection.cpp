#include "tap/reflection.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "ebpf/xdp.hpp"
#include "net/host_node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tap/tap_node.hpp"

namespace steelnet::tap {

using namespace steelnet::sim::literals;

ebpf::CostParams fig4_calibrated_costs() {
  ebpf::CostParams p;
  // Fixed NIC/driver pipeline on the authors' testbed dominates the
  // floor; helper costs are scaled to reproduce the published clusters
  // (see DESIGN.md, experiment Fig. 4).
  p.per_run_base_ns = 7'200;
  p.insn_ns = 25;
  p.pkt_access_ns = 90;
  p.stack_access_ns = 60;
  p.ktime_ns = 450;
  p.ringbuf_base_ns = 4'500;
  p.ringbuf_sigma = 0.28;
  p.map_ns = 150;
  p.cache_miss_p = 0.02;
  p.cache_miss_ns = 350;
  p.env_sigma_ns = 60;
  p.per_flow_miss_factor = 0.06;
  p.per_flow_env_ns = 60;
  p.irq_p = 0.0001;
  p.irq_ns = 9'000;
  return p;
}

ReflectionReport run_traffic_reflection(const ReflectionConfig& config) {
  if (config.flows == 0 || config.packets == 0) {
    throw std::invalid_argument("run_traffic_reflection: empty workload");
  }

  sim::Simulator simulator;
  net::Network network{simulator};

  auto& sender = network.add_node<net::HostNode>("sender",
                                                 net::MacAddress{0x10});
  auto& tap = network.add_node<TapNode>("tap");
  auto& dut = network.add_node<net::HostNode>("dut", net::MacAddress{0x20});

  const net::LinkParams link{1'000'000'000, 500_ns};
  network.connect(sender.id(), net::HostNode::kNicPort, tap.id(),
                  TapNode::kPortA, link);
  network.connect(tap.id(), TapNode::kPortB, dut.id(),
                  net::HostNode::kNicPort, link);

  ebpf::XdpHook hook(ebpf::make_reflector(config.variant), config.costs,
                     config.seed);
  hook.set_concurrent_flows(config.flows);
  dut.set_nic_processor(&hook);

  // A fast userspace consumer keeps the ring buffer drained; without
  // this, long runs would fill it and change drop behaviour mid-run.
  hook.set_observer(
      [&](const ebpf::RunResult&) { hook.vm().ringbuf().drain(); });

  std::uint64_t reflected = 0;
  sender.set_receiver(
      [&](net::Frame, sim::SimTime) { ++reflected; });

  // One periodic emitter per flow, staggered across the cycle so frames
  // do not collide at the sender NIC by construction.
  std::vector<std::unique_ptr<sim::PeriodicTask>> emitters;
  std::vector<std::uint64_t> seqs(config.flows, 0);
  for (std::size_t f = 0; f < config.flows; ++f) {
    const sim::SimTime offset =
        sim::SimTime{config.cycle.nanos() *
                     static_cast<std::int64_t>(f) /
                     static_cast<std::int64_t>(config.flows)};
    emitters.push_back(std::make_unique<sim::PeriodicTask>(
        simulator, offset, config.cycle, [&, f] {
          if (seqs[f] >= config.packets) return;
          net::Frame frame;
          frame.dst = dut.mac();
          frame.ethertype = net::EtherType::kProfinetRt;
          frame.pcp = 6;
          frame.flow_id = f;
          frame.seq = seqs[f]++;
          frame.payload.assign(config.payload_bytes, 0);
          frame.write_u64(0, f);
          sender.send(std::move(frame));
        }));
  }

  simulator.run_until(config.cycle * static_cast<std::int64_t>(
                          config.packets + 2));

  // Pair tap observations for flow 0: A->B stamp vs B->A stamp per seq.
  std::vector<std::optional<sim::SimTime>> t_in(config.packets);
  std::vector<std::optional<sim::SimTime>> t_out(config.packets);
  for (const auto& o : tap.observations()) {
    if (o.flow_id != 0 || o.seq >= config.packets) continue;
    auto& slot = o.direction == TapDirection::kAtoB ? t_in[o.seq]
                                                    : t_out[o.seq];
    if (!slot.has_value()) slot = o.stamp;
  }

  ReflectionReport report;
  report.variant = ebpf::to_string(config.variant);
  report.flows = config.flows;
  report.frames_reflected = reflected;
  report.ringbuf_records = hook.vm().ringbuf().produced();
  report.ringbuf_drops = hook.vm().ringbuf().dropped();

  std::optional<tsn::PtpClock> clk_a, clk_b;
  if (config.with_ptp_comparison) {
    // The two capture points sit on opposite sides of the sync path, so
    // the unobservable path asymmetry biases their servos in opposite
    // directions -- which is why it never cancels out of a two-clock
    // delay measurement (§3, [63]).
    clk_a.emplace(config.ptp, config.seed ^ 0xaaaa);
    tsn::PtpConfig cfg_b = config.ptp;
    cfg_b.path_asymmetry = sim::SimTime{-config.ptp.path_asymmetry.nanos()};
    clk_b.emplace(cfg_b, config.seed ^ 0xbbbb);
  }

  for (std::size_t s = 0; s < config.packets; ++s) {
    if (!t_in[s].has_value() || !t_out[s].has_value()) {
      ++report.frames_lost;
      continue;
    }
    const sim::SimTime delay = *t_out[s] - *t_in[s];
    report.delay_us.add(delay.micros());
    if (config.with_ptp_comparison) {
      clk_a->advance_to(*t_in[s]);
      clk_b->advance_to(*t_out[s]);
      const sim::SimTime naive =
          clk_b->read(*t_out[s]) - clk_a->read(*t_in[s]);
      report.ptp_delay_us.add(naive.micros());
    }
  }
  for (double d : report.delay_us.successive_differences()) {
    report.jitter_ns.add(d * 1e3);  // us -> ns
  }
  return report;
}

}  // namespace steelnet::tap
