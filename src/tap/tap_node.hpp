// steelnet::tap -- a passive network TAP with hardware timestamping.
//
// §3: "all packet capture timestamps come from a single clock (the tap's
// clock), avoiding measurement errors caused by clock synchronization
// problems. ... the network taps have their own timestamping precision,
// which is acceptably low with 8 ns."
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "tsn/ptp.hpp"

namespace steelnet::tap {

/// Direction of a frame through the tap, from port A (0) or port B (1).
enum class TapDirection : std::uint8_t { kAtoB = 0, kBtoA = 1 };

struct TapObservation {
  sim::SimTime stamp;  ///< quantized tap-clock timestamp
  TapDirection direction;
  std::uint64_t flow_id;
  std::uint64_t seq;
  std::size_t wire_bytes;
};

/// Two-port inline tap: forwards A<->B with a fixed pass-through latency
/// and records every frame with its own (quantized) clock.
class TapNode final : public net::Node {
 public:
  static constexpr net::PortId kPortA = 0;
  static constexpr net::PortId kPortB = 1;

  explicit TapNode(sim::SimTime timestamp_resolution = sim::nanoseconds(8),
                   sim::SimTime passthrough_latency = sim::nanoseconds(50));

  void handle_frame(net::Frame frame, net::PortId in_port) override;

  [[nodiscard]] const std::vector<TapObservation>& observations() const {
    return log_;
  }
  void clear() { log_.clear(); }

  /// First observation matching (flow, seq, direction), if captured.
  [[nodiscard]] std::optional<sim::SimTime> find_stamp(
      std::uint64_t flow_id, std::uint64_t seq, TapDirection dir) const;

  [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  tsn::QuantizedTimestamper stamper_;
  sim::SimTime passthrough_;
  std::vector<TapObservation> log_;
  std::uint64_t frames_seen_ = 0;
};

}  // namespace steelnet::tap
