// steelnet::flowmon -- the metering key of one L2 flow.
//
// Flows are keyed on what an in-network meter can actually see on the
// wire: (src MAC, dst MAC, VLAN PCP, EtherType). Everything downstream
// (export records, the collector's taxonomy) is derived from measurement
// under this key -- never from the simulation-only Frame::flow_id.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/frame.hpp"

namespace steelnet::flowmon {

struct FlowKey {
  net::MacAddress src;
  net::MacAddress dst;
  std::uint8_t pcp = 0;
  net::EtherType ethertype = net::EtherType::kExperimental;

  [[nodiscard]] static FlowKey of(const net::Frame& frame) {
    return FlowKey{frame.src, frame.dst, static_cast<std::uint8_t>(frame.pcp & 0x7),
                   frame.ethertype};
  }

  [[nodiscard]] bool operator==(const FlowKey&) const = default;

  /// SplitMix64-style avalanche over the packed key; stable across
  /// platforms (golden traces depend on the probe order it induces).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t z = src.bits() ^ (dst.bits() << 11) ^
                      (static_cast<std::uint64_t>(pcp) << 56) ^
                      (static_cast<std::uint64_t>(ethertype) << 40);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Total order used to stabilize collector output.
  [[nodiscard]] bool operator<(const FlowKey& o) const {
    if (src.bits() != o.src.bits()) return src.bits() < o.src.bits();
    if (dst.bits() != o.dst.bits()) return dst.bits() < o.dst.bits();
    if (pcp != o.pcp) return pcp < o.pcp;
    return static_cast<std::uint16_t>(ethertype) <
           static_cast<std::uint16_t>(o.ethertype);
  }

  [[nodiscard]] std::string to_string() const {
    char et[8];
    std::snprintf(et, sizeof et, "%04x",
                  static_cast<unsigned>(ethertype));
    return src.to_string() + "->" + dst.to_string() + " pcp" +
           std::to_string(pcp) + " 0x" + et;
  }
};

}  // namespace steelnet::flowmon
