// steelnet::flowmon -- mediation / transform rules between federation
// tiers (the transform_rules.c idea from ipfix-wrt, made declarative).
//
// A cell-tier collector re-exporting to the plant tier may not forward
// records verbatim: the plant schema can rename fields, drop
// cell-internal ones, re-scale units, and stamp its own observation
// domain. TransformRules captures that declaratively; CompiledTransform
// binds the rules to a concrete input template once, yielding the output
// wire template plus a per-field source map, so applying the transform
// per record is branch-free arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "flowmon/ipfix.hpp"

namespace steelnet::flowmon {

struct TransformRules {
  /// Nonzero: re-exported messages carry this observation domain id.
  std::uint32_t rewrite_domain = 0;
  /// Nonzero: the output template is advertised under this id (else the
  /// input template's id is kept).
  std::uint16_t rewrite_template_id = 0;
  /// Fields removed from the output template entirely.
  std::vector<FieldId> drops;
  /// Field renames: the value of `from` is exported under `to`'s id
  /// (width preserved).
  struct Remap {
    FieldId from;
    FieldId to;
  };
  std::vector<Remap> remaps;
  /// Integer re-scaling: value * num / den (e.g. ns -> us with 1/1000).
  struct Scale {
    FieldId field;
    std::uint64_t num = 1;
    std::uint64_t den = 1;
  };
  std::vector<Scale> scales;
  /// Records with fewer packets are not re-exported (mediation filter);
  /// dropped records are counted by the collector as transform drops.
  std::uint64_t min_packets = 0;
};

/// TransformRules bound to one input template.
class CompiledTransform {
 public:
  CompiledTransform() = default;
  CompiledTransform(const TransformRules& rules, const Template& input);

  /// The template advertised downstream (post drop/remap/re-id).
  [[nodiscard]] const Template& wire_template() const { return wire_; }
  /// Mediation filter: should this record be re-exported at all?
  [[nodiscard]] bool keep(const ExportRecord& r) const {
    return r.packets >= min_packets_;
  }
  /// Output value of wire field `field_index` for record `r` (source
  /// field lookup + scaling).
  [[nodiscard]] std::uint64_t value_of(const ExportRecord& r,
                                       std::size_t field_index) const;
  /// The observation domain to stamp, given the tier's default.
  [[nodiscard]] std::uint32_t domain_or(std::uint32_t fallback) const {
    return rewrite_domain_ != 0 ? rewrite_domain_ : fallback;
  }

 private:
  struct Source {
    FieldId from = FieldId::kForeignField;
    std::uint64_t num = 1;
    std::uint64_t den = 1;
  };

  Template wire_;
  std::vector<Source> sources_;  ///< parallel to wire_.fields
  std::uint64_t min_packets_ = 0;
  std::uint32_t rewrite_domain_ = 0;
};

/// Encodes one re-export message: `records` pass through `t`'s field
/// map/scaling and are framed under its wire template.
[[nodiscard]] std::vector<std::uint8_t> encode_transformed(
    const MessageHeader& header, const CompiledTransform& t,
    bool include_template, const std::vector<ExportRecord>& records);

}  // namespace steelnet::flowmon
