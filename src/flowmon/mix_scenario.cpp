#include "flowmon/mix_scenario.hpp"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "net/host_node.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace steelnet::flowmon {
namespace {

// Deterministic MAC plan: one OUI-like prefix per role.
constexpr std::uint64_t kDcHostBase = 0x0a'0000'000001ULL;
constexpr std::uint64_t kVplcHostBase = 0x0b'0000'000001ULL;
constexpr std::uint64_t kFlowDstBase = 0x0c'0000'000001ULL;
constexpr std::uint64_t kSinkMac = 0x0c'ffff'ffff'01ULL & 0xffff'ffff'ffffULL;
constexpr std::uint64_t kExportMac = 0x0d'0000'000001ULL;
constexpr std::uint64_t kCollectorMac = 0x0e'0000'000001ULL;

/// One offered flow: either byte-bounded with randomized inter-packet
/// gaps (mice / medium / elephant) or cycle-periodic and open-ended
/// (vPLC). Self-schedules its frames; stops at the window end or when the
/// byte budget is spent.
class FlowSender {
 public:
  struct Plan {
    net::MacAddress dst;
    net::EtherType ethertype = net::EtherType::kIpv4;
    std::uint8_t pcp = 0;
    std::size_t payload_bytes = 0;
    std::uint64_t total_bytes = 0;  ///< 0 = unbounded (periodic flows)
    sim::SimTime start;
    bool periodic = false;
    sim::SimTime cycle;            ///< periodic flows
    sim::SimTime gap_lo, gap_hi;   ///< randomized flows
    std::uint64_t flow_id = 0;
  };

  FlowSender(sim::Simulator& sim, net::HostNode& host, Plan plan,
             sim::Rng rng, sim::SimTime window_end,
             std::uint64_t& frames_sent)
      : sim_(sim),
        host_(host),
        plan_(plan),
        rng_(std::move(rng)),
        window_end_(window_end),
        frames_sent_(frames_sent) {
    sim_.schedule_at(plan_.start, [this] { fire(); });
  }

 private:
  void fire() {
    net::Frame frame =
        host_.network().frame_pool().make(plan_.payload_bytes);
    frame.dst = plan_.dst;
    frame.ethertype = plan_.ethertype;
    frame.pcp = plan_.pcp;
    frame.flow_id = plan_.flow_id;
    frame.seq = seq_++;
    host_.send(std::move(frame));
    ++frames_sent_;
    sent_bytes_ += plan_.payload_bytes;

    if (plan_.total_bytes != 0 && sent_bytes_ >= plan_.total_bytes) return;
    const sim::SimTime gap =
        plan_.periodic
            ? plan_.cycle
            : sim::SimTime{static_cast<std::int64_t>(rng_.uniform(
                  double(plan_.gap_lo.nanos()), double(plan_.gap_hi.nanos())))};
    const sim::SimTime next = sim_.now() + gap;
    if (next > window_end_) return;
    sim_.schedule_at(next, [this] { fire(); });
  }

  sim::Simulator& sim_;
  net::HostNode& host_;
  Plan plan_;
  sim::Rng rng_;
  sim::SimTime window_end_;
  std::uint64_t& frames_sent_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_bytes_ = 0;
};

}  // namespace

MeasuredMixResult run_measured_mix(const MeasuredMixSpec& spec) {
  sim::Simulator sim;
  net::Network net{sim};

  const std::size_t senders = spec.dc_hosts + spec.vplc_hosts;
  net::SwitchConfig sw_cfg;
  sw_cfg.num_ports = senders + 3;  // + sink, export NIC, collector
  auto& sw = net.add_node<net::SwitchNode>("sw0", sw_cfg);

  std::vector<net::HostNode*> dc_hosts;
  std::vector<net::HostNode*> vplc_hosts;
  net::PortId port = 0;
  for (std::size_t i = 0; i < spec.dc_hosts; ++i) {
    auto& h = net.add_node<net::HostNode>(
        "dc" + std::to_string(i), net::MacAddress{kDcHostBase + i});
    net.connect(sw.id(), port++, h.id(), net::HostNode::kNicPort);
    dc_hosts.push_back(&h);
  }
  for (std::size_t i = 0; i < spec.vplc_hosts; ++i) {
    auto& h = net.add_node<net::HostNode>(
        "vplc" + std::to_string(i), net::MacAddress{kVplcHostBase + i});
    net.connect(sw.id(), port++, h.id(), net::HostNode::kNicPort);
    vplc_hosts.push_back(&h);
  }
  auto& sink = net.add_node<net::HostNode>("sink", net::MacAddress{kSinkMac});
  const net::PortId sink_port = port++;
  net.connect(sw.id(), sink_port, sink.id(), net::HostNode::kNicPort);

  auto& export_nic = net.add_node<net::HostNode>(
      "meter-mgmt", net::MacAddress{kExportMac});
  net.connect(sw.id(), port++, export_nic.id(), net::HostNode::kNicPort);

  auto& collector = net.add_node<CollectorNode>(
      "collector", net::MacAddress{kCollectorMac});
  const net::PortId collector_port = port++;
  net.connect(sw.id(), collector_port, collector.id(), 0);
  sw.add_fdb_entry(collector.mac(), collector_port);

  MeterConfig meter_cfg = spec.meter;
  meter_cfg.collector_mac = collector.mac();
  auto meter = std::make_unique<MeterPoint>(sw, export_nic, meter_cfg);

  // --- offered workload ------------------------------------------------
  // Flow identity is (src, dst, pcp, ethertype); every flow gets a unique
  // destination MAC (pre-routed via the static FDB) so concurrent flows
  // from one host stay distinct at the meter.
  MeasuredMixResult result;
  sim::Rng root{spec.seed};
  std::vector<std::unique_ptr<FlowSender>> flows;
  std::uint64_t next_dst = 0;
  std::uint64_t flow_id = 0;

  auto add_flow = [&](net::HostNode& host, FlowSender::Plan plan,
                      sim::Rng rng) {
    plan.dst = net::MacAddress{kFlowDstBase + next_dst++};
    sw.add_fdb_entry(plan.dst, sink_port);
    plan.flow_id = flow_id++;
    flows.push_back(std::make_unique<FlowSender>(
        sim, host, plan, std::move(rng), spec.observation,
        result.frames_sent));
  };

  // Byte-bounded flows finish well inside the window (by ~60% of it) so
  // the idle sweep closes them before the final flush; only the vPLC
  // flows are still live then, which is exactly what makes them measure
  // as open-ended.
  const double window_s = spec.observation.seconds();
  sim::Rng mice_rng = root.derive("mice");
  for (std::size_t i = 0; i < spec.mice; ++i) {
    FlowSender::Plan p;
    p.payload_bytes = 800;
    p.total_bytes =
        static_cast<std::uint64_t>(mice_rng.uniform(200, 9.0 * 1024));
    p.start = sim::SimTime{static_cast<std::int64_t>(
        mice_rng.uniform(0, 0.5 * window_s * 1e9))};
    p.gap_lo = sim::microseconds(20);
    p.gap_hi = sim::microseconds(200);
    add_flow(*dc_hosts[i % dc_hosts.size()], p, mice_rng.fork());
  }
  sim::Rng medium_rng = root.derive("medium");
  for (std::size_t i = 0; i < spec.medium; ++i) {
    FlowSender::Plan p;
    p.payload_bytes = 1400;
    p.total_bytes = static_cast<std::uint64_t>(
        medium_rng.lognormal(std::log(150.0 * 1024), 0.4));
    p.start = sim::SimTime{static_cast<std::int64_t>(
        medium_rng.uniform(0, 0.2 * window_s * 1e9))};
    p.gap_lo = sim::microseconds(500);
    p.gap_hi = sim::microseconds(2000);
    add_flow(*dc_hosts[i % dc_hosts.size()], p, medium_rng.fork());
  }
  sim::Rng ele_rng = root.derive("elephant");
  for (std::size_t i = 0; i < spec.elephants; ++i) {
    FlowSender::Plan p;
    p.payload_bytes = 1400;
    p.total_bytes = static_cast<std::uint64_t>(
        ele_rng.uniform(1.25, 3.0) * 1024 * 1024);
    p.start = sim::SimTime{
        static_cast<std::int64_t>(ele_rng.uniform(0, 0.05 * window_s * 1e9))};
    p.gap_lo = sim::microseconds(100);
    p.gap_hi = sim::microseconds(500);
    add_flow(*dc_hosts[i % dc_hosts.size()], p, ele_rng.fork());
  }
  sim::Rng vplc_rng = root.derive("vplc");
  for (std::size_t i = 0; i < spec.vplc_flows; ++i) {
    // §2.3 vPLC cadences: < 2 ms cycles with 20-50 B payloads, or 1-10 ms
    // with up to 250 B -- exactly periodic and never-ending.
    FlowSender::Plan p;
    const bool fast = vplc_rng.bernoulli(0.5);
    p.ethertype = net::EtherType::kProfinetRt;
    p.pcp = 6;
    p.periodic = true;
    p.cycle = sim::SimTime{static_cast<std::int64_t>(
        fast ? vplc_rng.uniform(250e3, 2e6) : vplc_rng.uniform(1e6, 10e6))};
    p.payload_bytes = static_cast<std::size_t>(
        fast ? vplc_rng.uniform(20, 50) : vplc_rng.uniform(40, 250));
    p.start = sim::SimTime{
        static_cast<std::int64_t>(vplc_rng.uniform(0, 1e6))};
    add_flow(*vplc_hosts[i % vplc_hosts.size()], p, vplc_rng.fork());
  }
  result.flows_offered = flows.size();

  // --- run, flush, drain ------------------------------------------------
  sim.run_until(spec.observation);
  meter->flush();
  sim.run_until(spec.observation + sim::milliseconds(50));

  result.meter = meter->stats();
  result.cache = meter->cache().stats();
  meter.reset();  // detach before nodes go away

  result.flows = collector.flows();
  result.measured = collector.measured_stats();
  result.collector = collector.counters();
  result.fingerprint = collector.fingerprint();
  return result;
}

}  // namespace steelnet::flowmon
