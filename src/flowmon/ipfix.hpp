// steelnet::flowmon -- the export wire format.
//
// An RFC 7011 IPFIX message codec: network byte order throughout, the
// 16-byte message header (version 10, total length, exportTime in epoch
// seconds, sequenceNumber, observationDomainId), template sets (set id 2)
// describing record layouts field-by-field -- enterprise-specific
// elements carry the E-bit plus a 4-byte Private Enterprise Number --
// and data sets (set id >= 256) of fixed-size records padded to 4-byte
// set alignment. The collector decodes data records *through the
// template it learned*, skipping unknown fields (and foreign-PEN fields)
// by width, so meter and collector can evolve independently -- exactly
// the property templates buy real IPFIX deployments. Messages travel as
// net::Frame payloads (EtherType::kFlowmonExport).
//
// Sequence numbers follow RFC 7011 §3.1: the count of data records sent
// prior to this message on this (exporter session, observation domain)
// stream, modulo 2^32 -- collectors must use serial-number arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "flowmon/flow_cache.hpp"

namespace steelnet::flowmon {

/// Our Private Enterprise Number for enterprise-specific elements
/// (placeholder value; steelnet has no IANA assignment).
inline constexpr std::uint32_t kSteelnetPen = 0xBEEF;

/// The enterprise bit of a field specifier (RFC 7011 §3.2).
inline constexpr std::uint16_t kEnterpriseBit = 0x8000;

/// Field identifiers. Where IANA defines a fitting information element
/// the id matches; cadence fields are enterprise-specific (E-bit set,
/// exported under kSteelnetPen).
enum class FieldId : std::uint16_t {
  kOctets = 1,         ///< payload octets (octetDeltaCount)
  kPackets = 2,        ///< packetDeltaCount
  kSrcMac = 56,        ///< sourceMacAddress, 6 bytes
  kDstMac = 80,        ///< destinationMacAddress, 6 bytes
  kEndReason = 136,    ///< flowEndReason
  kFirstSeenNs = 156,  ///< flowStartNanoseconds
  kLastSeenNs = 157,   ///< flowEndNanoseconds
  kVlanPcp = 244,      ///< dot1qPriority
  kEtherType = 256,    ///< ethernetType
  kLayer2Octets = 352, ///< layer2OctetDeltaCount
  // Enterprise range (E-bit | element id): cadence statistics.
  kMinIatNs = kEnterpriseBit | 1,
  kMeanIatNs = kEnterpriseBit | 2,
  kJitterNs = kEnterpriseBit | 3,
  /// Decoder marker for an enterprise field under a foreign PEN: its
  /// width is honoured (skip-by-width) but its value binds to nothing.
  kForeignField = 0x7fff,
};

struct TemplateField {
  FieldId id;
  std::uint8_t width;  ///< octets on the wire (1..8)
};

struct Template {
  std::uint16_t id = 0;  ///< data-set ids start at 256 (RFC 7011 §3.4.1)
  std::vector<TemplateField> fields;

  [[nodiscard]] std::size_t record_bytes() const;
};

/// The flow-record template this meter exports (id 256).
[[nodiscard]] const Template& flow_template();

/// One decoded flow record.
struct ExportRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  sim::SimTime min_iat;
  sim::SimTime mean_iat;
  sim::SimTime jitter;
  EndReason end_reason = EndReason::kEndOfFlow;
};

/// Snapshot of a cache record for export.
[[nodiscard]] ExportRecord to_export_record(const FlowRecord& r,
                                            EndReason reason);

/// Record field lookup by information element -- the single source of
/// truth shared by the encoder and mediation transforms.
[[nodiscard]] std::uint64_t field_value(const ExportRecord& r, FieldId id);
/// Inverse of field_value for the decoder; kForeignField binds nothing.
void assign_field(ExportRecord& r, FieldId id, std::uint64_t v);

struct MessageHeader {
  std::uint16_t version = kVersion;
  std::uint32_t observation_domain = 0;
  /// Count of data records sent prior to this message on this stream
  /// (RFC 7011 sequence semantics, wraps at 2^32).
  std::uint32_t sequence = 0;
  /// Encoded as the RFC's 32-bit exportTime *seconds* field: truncated
  /// to whole seconds on the wire, so a decoded header carries
  /// second-granularity time.
  sim::SimTime export_time;

  static constexpr std::uint16_t kVersion = 10;  ///< IPFIX version number
};

/// Learned templates, keyed on (exporter session, observation domain,
/// template id). The session id scopes streams from distinct exporters
/// that share a domain number -- we use the exporter's MAC bits.
class TemplateStore {
 public:
  void learn(std::uint64_t session, std::uint32_t domain, Template tmpl);
  [[nodiscard]] const Template* find(std::uint64_t session,
                                     std::uint32_t domain,
                                     std::uint16_t template_id) const;
  [[nodiscard]] std::size_t size() const { return templates_.size(); }

 private:
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint16_t>, Template>
      templates_;
};

/// Serializes one export message: header, optionally the template set,
/// then one data set carrying `records` laid out per `tmpl`.
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    const std::vector<ExportRecord>& records);

/// Low-level encoder: identical framing, but field values come from
/// `value(record_index, field_index)` -- the hook mediation transforms
/// use to re-write records between federation tiers.
[[nodiscard]] std::vector<std::uint8_t> encode_message_fn(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    std::size_t record_count,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& value);

struct DecodedMessage {
  MessageHeader header;
  std::uint16_t templates_learned = 0;
  std::vector<ExportRecord> records;
  /// Data sets skipped because their template was unknown.
  std::uint16_t records_without_template = 0;
};

/// Parses a message, learning templates into `store` (under `session`)
/// and decoding data records through it. Returns nullopt on a malformed
/// buffer -- truncated set, bad version, zero-field template, or a data
/// set whose length does not tile into whole records (+ <=3 padding).
[[nodiscard]] std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& payload, TemplateStore& store,
    std::uint64_t session = 0);

namespace wire {
/// Big-endian append / patch / bounded read, shared with transform.cpp.
void put_be(std::vector<std::uint8_t>& buf, std::uint64_t value,
            std::size_t width);
void patch_be16(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint16_t value);
[[nodiscard]] bool read_be(const std::vector<std::uint8_t>& buf,
                           std::size_t& at, std::size_t width,
                           std::uint64_t& out);
}  // namespace wire

}  // namespace steelnet::flowmon
