// steelnet::flowmon -- the export wire format.
//
// An IPFIX-shaped (RFC 7011-flavoured) message codec: a message header,
// template sets describing record layouts field-by-field, and data sets
// of fixed-size records. The collector decodes data records *through the
// template it learned*, skipping unknown fields by width -- so meter and
// collector can evolve independently, exactly the property templates buy
// real IPFIX deployments. Messages travel as net::Frame payloads
// (EtherType::kFlowmonExport), little-endian like the rest of steelnet's
// on-wire payloads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "flowmon/flow_cache.hpp"

namespace steelnet::flowmon {

/// Field identifiers. Where IANA defines a fitting information element
/// the id matches; cadence fields live in a private range.
enum class FieldId : std::uint16_t {
  kOctets = 1,         ///< payload octets (octetDeltaCount)
  kPackets = 2,        ///< packetDeltaCount
  kSrcMac = 56,        ///< sourceMacAddress, 6 bytes
  kDstMac = 80,        ///< destinationMacAddress, 6 bytes
  kEndReason = 136,    ///< flowEndReason
  kFirstSeenNs = 156,  ///< flowStartNanoseconds
  kLastSeenNs = 157,   ///< flowEndNanoseconds
  kVlanPcp = 244,      ///< dot1qPriority
  kEtherType = 256,    ///< ethernetType
  kLayer2Octets = 352, ///< layer2OctetDeltaCount
  // Private enterprise range: cadence statistics.
  kMinIatNs = 0x8001,
  kMeanIatNs = 0x8002,
  kJitterNs = 0x8003,
};

/// Why a record was exported (values follow IPFIX flowEndReason).
enum class EndReason : std::uint8_t {
  kIdleTimeout = 0x01,   ///< flow went silent; record evicted
  kActiveTimeout = 0x02, ///< long-lived flow checkpoint; flow still live
  kEndOfFlow = 0x03,     ///< protocol-level end (unused by the L2 meter)
  kForcedEnd = 0x04,     ///< meter flushed (end of observation)
  kLackOfResources = 0x05,
};

struct TemplateField {
  FieldId id;
  std::uint8_t width;  ///< octets on the wire
};

struct Template {
  std::uint16_t id = 0;  ///< data-set ids start at 256, like IPFIX
  std::vector<TemplateField> fields;

  [[nodiscard]] std::size_t record_bytes() const;
};

/// The flow-record template this meter exports (id 256).
[[nodiscard]] const Template& flow_template();

/// One decoded flow record.
struct ExportRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  sim::SimTime min_iat;
  sim::SimTime mean_iat;
  sim::SimTime jitter;
  EndReason end_reason = EndReason::kEndOfFlow;
};

/// Snapshot of a cache record for export.
[[nodiscard]] ExportRecord to_export_record(const FlowRecord& r,
                                            EndReason reason);

struct MessageHeader {
  std::uint16_t version = kVersion;
  std::uint32_t observation_domain = 0;
  /// Count of data records ever exported before this message (IPFIX
  /// sequence semantics: lets the collector detect lost records).
  std::uint32_t sequence = 0;
  sim::SimTime export_time;

  static constexpr std::uint16_t kVersion = 10;  ///< IPFIX version number
};

/// Learned templates, keyed on (observation domain, template id).
class TemplateStore {
 public:
  void learn(std::uint32_t domain, Template tmpl);
  [[nodiscard]] const Template* find(std::uint32_t domain,
                                     std::uint16_t template_id) const;
  [[nodiscard]] std::size_t size() const { return templates_.size(); }

 private:
  std::map<std::pair<std::uint32_t, std::uint16_t>, Template> templates_;
};

/// Serializes one export message: header, optionally the template set,
/// then one data set carrying `records` laid out per `tmpl`.
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    const std::vector<ExportRecord>& records);

struct DecodedMessage {
  MessageHeader header;
  std::uint16_t templates_learned = 0;
  std::vector<ExportRecord> records;
  /// Data records skipped because their template was unknown.
  std::uint16_t records_without_template = 0;
};

/// Parses a message, learning templates into `store` and decoding data
/// records through it. Returns nullopt on a malformed buffer.
[[nodiscard]] std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& payload, TemplateStore& store);

}  // namespace steelnet::flowmon
