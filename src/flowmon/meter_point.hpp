// steelnet::flowmon -- the in-network metering process.
//
// A MeterPoint attaches to any net::Node (switch, host, sdn switch) via
// the Node frame-observer hook -- a port mirror, invisible to the
// forwarding path -- meters every arriving frame into a FlowCache, and
// exports IPFIX-style records toward a collector. Export is real traffic:
// records are serialized into net::Frame payloads and sent through the
// attached export NIC (a HostNode, the meter's management port), so
// telemetry contends for the network like any other flow and identical
// seeds yield identical export traces.
//
// Expiry is event-driven: a periodic sweep (export_interval) evicts flows
// silent for idle_timeout (exported with EndReason::kIdleTimeout) and
// checkpoints long-lived flows every active_timeout
// (EndReason::kActiveTimeout) -- the standard IPFIX metering-process
// behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "flowmon/flow_cache.hpp"
#include "flowmon/ipfix.hpp"
#include "net/host_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::flowmon {

struct MeterConfig {
  std::size_t cache_capacity = 4096;
  /// Silence after which a flow is considered over and evicted.
  sim::SimTime idle_timeout = sim::milliseconds(500);
  /// Checkpoint interval for still-running flows.
  sim::SimTime active_timeout = sim::seconds(1);
  /// Sweep cadence (also bounds export latency).
  sim::SimTime export_interval = sim::milliseconds(100);
  /// Destination of export frames.
  net::MacAddress collector_mac;
  std::uint32_t observation_domain = 1;
  std::uint8_t export_pcp = 0;
  /// Records per export frame; 16 x 80 B records fit a 1.4 kB payload.
  std::size_t max_records_per_frame = 16;
  /// Resend the template every N export frames (IPFIX re-advertisement).
  std::uint32_t template_refresh_frames = 16;
  /// Meter the telemetry itself? Off by default so export traffic does
  /// not show up in the measured mix.
  bool meter_exports = false;
  /// Expiry engine for the cache (wheel by default; scan is the legacy
  /// full-table walk kept for A/B benchmarking).
  ExpiryEngine expiry_engine = ExpiryEngine::kWheel;
  /// Wheel granularity; clamped to export_interval so the byte-identical
  /// wheel-vs-scan guarantee holds (see FlowCache).
  sim::SimTime wheel_tick = sim::milliseconds(100);
};

struct MeterStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t frames_ignored = 0;  ///< export frames, when meter_exports off
  std::uint64_t records_exported = 0;
  std::uint64_t export_frames = 0;
  std::uint64_t idle_expired = 0;
  std::uint64_t active_checkpoints = 0;
  std::uint64_t flushed = 0;
};

class MeterPoint : public net::FrameObserver {
 public:
  /// Taps `observed` and exports via `export_nic` (not owned; both must be
  /// attached to a Network already). Detaches itself on destruction.
  MeterPoint(net::Node& observed, net::HostNode& export_nic, MeterConfig cfg);
  ~MeterPoint() override;
  MeterPoint(const MeterPoint&) = delete;
  MeterPoint& operator=(const MeterPoint&) = delete;

  void on_frame(const net::Frame& frame, net::PortId in_port) override;

  /// Exports every remaining record (EndReason::kForcedEnd) and empties
  /// the cache -- call at the end of an observation window. Flows still
  /// live at flush time are what the collector reports as open-ended.
  void flush();

  [[nodiscard]] const FlowCache& cache() const { return cache_; }
  [[nodiscard]] const MeterStats& stats() const { return stats_; }
  [[nodiscard]] const MeterConfig& config() const { return cfg_; }

  /// Liveness view: when was `key` last seen, if it is in the cache.
  [[nodiscard]] std::optional<sim::SimTime> last_seen(
      const FlowKey& key) const;
  /// Last frame seen from `src` across all of its flows (scan).
  [[nodiscard]] std::optional<sim::SimTime> last_seen_from(
      net::MacAddress src) const;
  /// Whole `cycle` periods `key` has been silent for at `now`; nullopt if
  /// the flow is not (or no longer) in the cache.
  [[nodiscard]] std::optional<std::int64_t> silent_cycles(
      const FlowKey& key, sim::SimTime cycle, sim::SimTime now) const;

  /// Binds meter + flow-cache counters under `<node_label>/flowmon/...`
  /// (default: named after the observed node).
  void register_metrics(obs::ObsHub& hub) const;
  void register_metrics(obs::ObsHub& hub, const std::string& node_label) const;

 private:
  void sweep();
  void export_records(std::vector<ExportRecord> records);

  net::Node& observed_;
  net::HostNode& export_nic_;
  MeterConfig cfg_;
  FlowCache cache_;
  std::unique_ptr<sim::PeriodicTask> sweeper_;
  std::uint32_t sequence_ = 0;
  std::uint32_t frames_since_template_ = 0;
  MeterStats stats_;
};

/// An InstaPLC-compatible liveness probe: reports the last time any flow
/// sourced by `src` was observed at the meter. Plugs into
/// instaplc::InstaPlcApp::set_liveness_probe so the switchover monitor
/// runs off in-network flow telemetry instead of the bespoke counter.
[[nodiscard]] std::function<std::optional<sim::SimTime>()>
make_liveness_probe(const MeterPoint& meter, net::MacAddress src);

}  // namespace steelnet::flowmon
