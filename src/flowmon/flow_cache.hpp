// steelnet::flowmon -- the metering flow cache.
//
// An open-addressing (linear probing) hash table of per-flow counters,
// after the find-or-create flow caches of software IPFIX meters
// (ipfix-wrt/Vermont lineage): the per-packet hot path is one hash, a
// short probe run, and a handful of counter updates. Expiry (active /
// idle timeout) runs through sweep(), driven by one of two engines:
//
//   kScan  -- the legacy full-table walk, O(capacity) per sweep;
//   kWheel -- a hierarchical timing wheel (sim::TimerWheel) holding one
//             deadline per flow, O(1) amortized per expiry, so a plant
//             tier can hold millions of live flows without scans.
//
// Both engines yield *identical* export streams at the same sweep times:
// expired candidates are emitted in the canonical (first_seen, FlowKey)
// order, and wheel timers fire on the rounded-down tick -- never late --
// with the true deadline lazily re-checked and re-armed. The wheel's
// equivalence guarantee needs consecutive sweeps at least one wheel tick
// apart (MeterPoint clamps the tick to its export interval).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flowmon/flow_key.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace steelnet::flowmon {

/// Why a record was exported (values follow IPFIX flowEndReason).
enum class EndReason : std::uint8_t {
  kIdleTimeout = 0x01,   ///< flow went silent; record evicted
  kActiveTimeout = 0x02, ///< long-lived flow checkpoint; flow still live
  kEndOfFlow = 0x03,     ///< protocol-level end (unused by the L2 meter)
  kForcedEnd = 0x04,     ///< meter flushed (end of observation)
  kLackOfResources = 0x05,
};

/// Per-flow counters and cadence statistics, as measured at the tap.
struct FlowRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;       ///< payload octets (what the app pays for)
  std::uint64_t wire_bytes = 0;  ///< L2 octets incl. headers + padding
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  /// Time of the last export of this record (active-timeout bookkeeping);
  /// equals first_seen until the first export.
  sim::SimTime last_export;

  // Inter-arrival cadence: min/mean over the packets-1 gaps, and jitter as
  // the mean |successive difference| of gaps (RFC 3550 flavour) over the
  // packets-2 gap pairs.
  sim::SimTime min_iat = sim::SimTime::max();
  sim::SimTime max_iat = sim::SimTime::zero();
  std::int64_t iat_sum_ns = 0;
  std::int64_t iat_jitter_sum_ns = 0;
  sim::SimTime prev_iat;
  bool has_prev_iat = false;

  /// min_iat with the unsampled SimTime::max() sentinel mapped to zero:
  /// a flow with fewer than two packets has no inter-arrival gap, and the
  /// sentinel must never leak into exports or taxonomy stats.
  [[nodiscard]] sim::SimTime min_iat_or_zero() const {
    return packets < 2 ? sim::SimTime::zero() : min_iat;
  }
  [[nodiscard]] sim::SimTime mean_iat() const {
    if (packets < 2) return sim::SimTime::zero();
    return sim::SimTime{iat_sum_ns / static_cast<std::int64_t>(packets - 1)};
  }
  [[nodiscard]] sim::SimTime mean_jitter() const {
    if (packets < 3) return sim::SimTime::zero();
    return sim::SimTime{iat_jitter_sum_ns /
                        static_cast<std::int64_t>(packets - 2)};
  }
  [[nodiscard]] std::size_t mean_packet_bytes() const {
    return packets == 0 ? 0 : static_cast<std::size_t>(bytes / packets);
  }
};

struct FlowCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erased = 0;
  std::uint64_t probes = 0;         ///< total probe steps beyond the home slot
  std::uint64_t dropped_full = 0;   ///< new flows refused: table at load cap
  std::uint64_t wheel_fires = 0;    ///< wheel timers that fired
  std::uint64_t wheel_rearms = 0;   ///< early fires re-armed (lazy deadline)
};

/// Which expiry engine drives FlowCache::sweep.
enum class ExpiryEngine : std::uint8_t { kScan, kWheel };

struct FlowCacheConfig {
  std::size_t capacity = 4096;
  sim::SimTime idle_timeout = sim::milliseconds(500);
  sim::SimTime active_timeout = sim::seconds(1);
  ExpiryEngine engine = ExpiryEngine::kWheel;
  /// Wheel granularity; sweeps closer together than this fall back to the
  /// next tick, so keep it <= the sweep cadence (MeterPoint enforces).
  sim::SimTime wheel_tick = sim::milliseconds(100);
};

/// Fixed-capacity open-addressing flow table. Capacity rounds up to a
/// power of two; the load factor is capped at 3/4 so probe runs stay
/// short. Deletion uses backward-shift compaction (no tombstones), which
/// keeps lookup cost stable under the meter's continuous expire/insert
/// churn; wheel timers ride along via cookie rebinding.
class FlowCache {
 public:
  /// Legacy knob-free form: scan engine, default timeouts.
  explicit FlowCache(std::size_t capacity = 4096);
  explicit FlowCache(const FlowCacheConfig& cfg);

  /// Hot path: account one frame to its flow, creating the record if the
  /// flow is new. Returns nullptr (and counts dropped_full) if the flow is
  /// new but the table is at its load cap -- existing flows keep metering.
  FlowRecord* record(const net::Frame& frame, sim::SimTime now);

  [[nodiscard]] FlowRecord* find(const FlowKey& key);
  [[nodiscard]] const FlowRecord* find(const FlowKey& key) const;

  /// Removes a flow; returns true if it existed.
  bool erase(const FlowKey& key);

  using ExportFn = std::function<void(const FlowRecord&, EndReason)>;

  /// Expires flows due at `now`: emits kIdleTimeout records (then evicts
  /// them) and kActiveTimeout checkpoints (flow stays live, last_export
  /// advances) in canonical (first_seen, FlowKey) order -- identical for
  /// both engines at the same sweep times. Returns records emitted.
  std::size_t sweep(sim::SimTime now, const ExportFn& fn);

  /// Emits every live flow as kForcedEnd in canonical order and empties
  /// the cache. Returns records emitted.
  std::size_t flush(const ExportFn& fn);

  /// Visits every live record in slot order (a deterministic function of
  /// the insert/erase history). `fn` must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.record);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.record);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Max live flows before new ones are refused (3/4 of capacity).
  [[nodiscard]] std::size_t load_cap() const { return load_cap_; }
  [[nodiscard]] const FlowCacheStats& stats() const { return stats_; }
  [[nodiscard]] const FlowCacheConfig& config() const { return cfg_; }
  [[nodiscard]] ExpiryEngine engine() const { return cfg_.engine; }

 private:
  struct Slot {
    FlowRecord record;
    bool used = false;
    sim::TimerWheel::TimerId timer = sim::TimerWheel::kInvalidTimer;
  };

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  [[nodiscard]] std::size_t home(const FlowKey& key) const {
    return static_cast<std::size_t>(key.hash()) & mask();
  }
  /// Index of the slot holding `key`, or of the first free slot in its
  /// probe run.
  [[nodiscard]] std::size_t probe(const FlowKey& key) const;
  /// Earliest of the record's idle and active deadlines.
  [[nodiscard]] sim::SimTime deadline_of(const FlowRecord& r) const;
  void emit_candidates(sim::SimTime now, const ExportFn& fn);

  FlowCacheConfig cfg_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t load_cap_;
  mutable FlowCacheStats stats_;
  sim::TimerWheel wheel_;
  // Sweep scratch, reused across calls to keep steady state allocation-free.
  std::vector<std::uint64_t> due_;
  std::vector<std::pair<std::uint32_t, EndReason>> candidates_;
  std::vector<FlowKey> evict_;
};

}  // namespace steelnet::flowmon
