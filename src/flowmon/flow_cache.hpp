// steelnet::flowmon -- the metering flow cache.
//
// An open-addressing (linear probing) hash table of per-flow counters,
// after the find-or-create flow caches of software IPFIX meters
// (ipfix-wrt/Vermont lineage): the per-packet hot path is one hash, a
// short probe run, and a handful of counter updates. Expiry (active /
// idle timeout) is swept from outside by the MeterPoint's timer event so
// the cache itself stays simulation-agnostic and benchmarkable.
#pragma once

#include <cstdint>
#include <vector>

#include "flowmon/flow_key.hpp"
#include "sim/time.hpp"

namespace steelnet::flowmon {

/// Per-flow counters and cadence statistics, as measured at the tap.
struct FlowRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;       ///< payload octets (what the app pays for)
  std::uint64_t wire_bytes = 0;  ///< L2 octets incl. headers + padding
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  /// Time of the last export of this record (active-timeout bookkeeping);
  /// equals first_seen until the first export.
  sim::SimTime last_export;

  // Inter-arrival cadence: min/mean over the packets-1 gaps, and jitter as
  // the mean |successive difference| of gaps (RFC 3550 flavour) over the
  // packets-2 gap pairs.
  sim::SimTime min_iat = sim::SimTime::max();
  sim::SimTime max_iat = sim::SimTime::zero();
  std::int64_t iat_sum_ns = 0;
  std::int64_t iat_jitter_sum_ns = 0;
  sim::SimTime prev_iat;
  bool has_prev_iat = false;

  /// min_iat with the unsampled SimTime::max() sentinel mapped to zero:
  /// a flow with fewer than two packets has no inter-arrival gap, and the
  /// sentinel must never leak into exports or taxonomy stats.
  [[nodiscard]] sim::SimTime min_iat_or_zero() const {
    return packets < 2 ? sim::SimTime::zero() : min_iat;
  }
  [[nodiscard]] sim::SimTime mean_iat() const {
    if (packets < 2) return sim::SimTime::zero();
    return sim::SimTime{iat_sum_ns / static_cast<std::int64_t>(packets - 1)};
  }
  [[nodiscard]] sim::SimTime mean_jitter() const {
    if (packets < 3) return sim::SimTime::zero();
    return sim::SimTime{iat_jitter_sum_ns /
                        static_cast<std::int64_t>(packets - 2)};
  }
  [[nodiscard]] std::size_t mean_packet_bytes() const {
    return packets == 0 ? 0 : static_cast<std::size_t>(bytes / packets);
  }
};

struct FlowCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erased = 0;
  std::uint64_t probes = 0;         ///< total probe steps beyond the home slot
  std::uint64_t dropped_full = 0;   ///< new flows refused: table at load cap
};

/// Fixed-capacity open-addressing flow table. Capacity rounds up to a
/// power of two; the load factor is capped at 3/4 so probe runs stay
/// short. Deletion uses backward-shift compaction (no tombstones), which
/// keeps lookup cost stable under the meter's continuous expire/insert
/// churn.
class FlowCache {
 public:
  explicit FlowCache(std::size_t capacity = 4096);

  /// Hot path: account one frame to its flow, creating the record if the
  /// flow is new. Returns nullptr (and counts dropped_full) if the flow is
  /// new but the table is at its load cap -- existing flows keep metering.
  FlowRecord* record(const net::Frame& frame, sim::SimTime now);

  [[nodiscard]] FlowRecord* find(const FlowKey& key);
  [[nodiscard]] const FlowRecord* find(const FlowKey& key) const;

  /// Removes a flow; returns true if it existed.
  bool erase(const FlowKey& key);

  /// Visits every live record in slot order (a deterministic function of
  /// the insert/erase history). `fn` must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.record);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.record);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Max live flows before new ones are refused (3/4 of capacity).
  [[nodiscard]] std::size_t load_cap() const { return load_cap_; }
  [[nodiscard]] const FlowCacheStats& stats() const { return stats_; }

 private:
  struct Slot {
    FlowRecord record;
    bool used = false;
  };

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  [[nodiscard]] std::size_t home(const FlowKey& key) const {
    return static_cast<std::size_t>(key.hash()) & mask();
  }
  /// Index of the slot holding `key`, or of the first free slot in its
  /// probe run.
  [[nodiscard]] std::size_t probe(const FlowKey& key) const;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t load_cap_;
  mutable FlowCacheStats stats_;
};

}  // namespace steelnet::flowmon
