#include "flowmon/ipfix.hpp"

namespace steelnet::flowmon {

namespace wire {

void put_be(std::vector<std::uint8_t>& buf, std::uint64_t value,
            std::size_t width) {
  for (std::size_t i = width; i-- > 0;) {
    buf.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void patch_be16(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint16_t value) {
  buf[at] = static_cast<std::uint8_t>(value >> 8);
  buf[at + 1] = static_cast<std::uint8_t>(value);
}

bool read_be(const std::vector<std::uint8_t>& buf, std::size_t& at,
             std::size_t width, std::uint64_t& out) {
  if (at + width > buf.size()) return false;
  out = 0;
  for (std::size_t i = 0; i < width; ++i) {
    out = (out << 8) | buf[at + i];
  }
  at += width;
  return true;
}

}  // namespace wire

namespace {

using wire::patch_be16;
using wire::put_be;
using wire::read_be;

/// RFC 7011 §3.1: version, length, exportTime, sequenceNumber, ODID.
constexpr std::size_t kHeaderBytes = 16;
constexpr std::uint16_t kTemplateSetId = 2;
constexpr std::uint16_t kMinDataSetId = 256;
constexpr std::int64_t kNsPerSecond = 1'000'000'000;

/// Pads `buf` with zero octets to the next 4-byte set boundary measured
/// from `set_start` (RFC 7011 §3.3.1 set padding).
void pad_set(std::vector<std::uint8_t>& buf, std::size_t set_start) {
  while ((buf.size() - set_start) % 4 != 0) buf.push_back(0);
}

}  // namespace

std::uint64_t field_value(const ExportRecord& r, FieldId id) {
  switch (id) {
    case FieldId::kOctets: return r.bytes;
    case FieldId::kPackets: return r.packets;
    case FieldId::kSrcMac: return r.key.src.bits();
    case FieldId::kDstMac: return r.key.dst.bits();
    case FieldId::kEndReason:
      return static_cast<std::uint64_t>(r.end_reason);
    case FieldId::kFirstSeenNs:
      return static_cast<std::uint64_t>(r.first_seen.nanos());
    case FieldId::kLastSeenNs:
      return static_cast<std::uint64_t>(r.last_seen.nanos());
    case FieldId::kVlanPcp: return r.key.pcp;
    case FieldId::kEtherType:
      return static_cast<std::uint64_t>(r.key.ethertype);
    case FieldId::kLayer2Octets: return r.wire_bytes;
    case FieldId::kMinIatNs:
      return static_cast<std::uint64_t>(r.min_iat.nanos());
    case FieldId::kMeanIatNs:
      return static_cast<std::uint64_t>(r.mean_iat.nanos());
    case FieldId::kJitterNs:
      return static_cast<std::uint64_t>(r.jitter.nanos());
    case FieldId::kForeignField: return 0;
  }
  return 0;
}

void assign_field(ExportRecord& r, FieldId id, std::uint64_t v) {
  switch (id) {
    case FieldId::kOctets: r.bytes = v; break;
    case FieldId::kPackets: r.packets = v; break;
    case FieldId::kSrcMac: r.key.src = net::MacAddress{v}; break;
    case FieldId::kDstMac: r.key.dst = net::MacAddress{v}; break;
    case FieldId::kEndReason:
      r.end_reason = static_cast<EndReason>(v);
      break;
    case FieldId::kFirstSeenNs:
      r.first_seen = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kLastSeenNs:
      r.last_seen = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kVlanPcp:
      r.key.pcp = static_cast<std::uint8_t>(v);
      break;
    case FieldId::kEtherType:
      r.key.ethertype = static_cast<net::EtherType>(v);
      break;
    case FieldId::kLayer2Octets: r.wire_bytes = v; break;
    case FieldId::kMinIatNs:
      r.min_iat = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kMeanIatNs:
      r.mean_iat = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kJitterNs:
      r.jitter = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kForeignField: break;  // foreign PEN: value dropped
  }
}

std::size_t Template::record_bytes() const {
  std::size_t n = 0;
  for (const auto& f : fields) n += f.width;
  return n;
}

const Template& flow_template() {
  static const Template kTemplate{
      256,
      {{FieldId::kSrcMac, 6},
       {FieldId::kDstMac, 6},
       {FieldId::kEtherType, 2},
       {FieldId::kVlanPcp, 1},
       {FieldId::kPackets, 8},
       {FieldId::kOctets, 8},
       {FieldId::kLayer2Octets, 8},
       {FieldId::kFirstSeenNs, 8},
       {FieldId::kLastSeenNs, 8},
       {FieldId::kMinIatNs, 8},
       {FieldId::kMeanIatNs, 8},
       {FieldId::kJitterNs, 8},
       {FieldId::kEndReason, 1}}};
  return kTemplate;
}

ExportRecord to_export_record(const FlowRecord& r, EndReason reason) {
  ExportRecord e;
  e.key = r.key;
  e.packets = r.packets;
  e.bytes = r.bytes;
  e.wire_bytes = r.wire_bytes;
  e.first_seen = r.first_seen;
  e.last_seen = r.last_seen;
  e.min_iat = r.min_iat_or_zero();
  e.mean_iat = r.mean_iat();
  e.jitter = r.mean_jitter();
  e.end_reason = reason;
  return e;
}

void TemplateStore::learn(std::uint64_t session, std::uint32_t domain,
                          Template tmpl) {
  templates_[{session, domain, tmpl.id}] = std::move(tmpl);
}

const Template* TemplateStore::find(std::uint64_t session,
                                    std::uint32_t domain,
                                    std::uint16_t template_id) const {
  const auto it = templates_.find({session, domain, template_id});
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> encode_message_fn(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    std::size_t record_count,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& value) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kHeaderBytes + record_count * tmpl.record_bytes() + 64);
  put_be(buf, header.version, 2);
  put_be(buf, 0, 2);  // total length, patched below
  put_be(buf,
         static_cast<std::uint64_t>(header.export_time.nanos() / kNsPerSecond),
         4);
  put_be(buf, header.sequence, 4);
  put_be(buf, header.observation_domain, 4);

  if (include_template) {
    const std::size_t set_start = buf.size();
    put_be(buf, kTemplateSetId, 2);
    put_be(buf, 0, 2);  // set length, patched below
    put_be(buf, tmpl.id, 2);
    put_be(buf, tmpl.fields.size(), 2);
    for (const auto& f : tmpl.fields) {
      const auto raw = static_cast<std::uint16_t>(f.id);
      put_be(buf, raw, 2);
      put_be(buf, f.width, 2);
      if ((raw & kEnterpriseBit) != 0) put_be(buf, kSteelnetPen, 4);
    }
    pad_set(buf, set_start);
    patch_be16(buf, set_start + 2,
               static_cast<std::uint16_t>(buf.size() - set_start));
  }

  if (record_count > 0) {
    const std::size_t set_start = buf.size();
    put_be(buf, tmpl.id, 2);
    put_be(buf, 0, 2);
    for (std::size_t r = 0; r < record_count; ++r) {
      for (std::size_t f = 0; f < tmpl.fields.size(); ++f) {
        put_be(buf, value(r, f), tmpl.fields[f].width);
      }
    }
    pad_set(buf, set_start);
    patch_be16(buf, set_start + 2,
               static_cast<std::uint16_t>(buf.size() - set_start));
  }

  patch_be16(buf, 2, static_cast<std::uint16_t>(buf.size()));
  return buf;
}

std::vector<std::uint8_t> encode_message(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    const std::vector<ExportRecord>& records) {
  return encode_message_fn(
      header, tmpl, include_template, records.size(),
      [&](std::size_t r, std::size_t f) {
        return field_value(records[r], tmpl.fields[f].id);
      });
}

std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& payload, TemplateStore& store,
    std::uint64_t session) {
  std::size_t at = 0;
  std::uint64_t v = 0;
  DecodedMessage msg;

  if (!read_be(payload, at, 2, v)) return std::nullopt;
  msg.header.version = static_cast<std::uint16_t>(v);
  if (msg.header.version != MessageHeader::kVersion) return std::nullopt;
  if (!read_be(payload, at, 2, v)) return std::nullopt;
  const std::size_t total_length = v;
  if (total_length < kHeaderBytes || total_length > payload.size()) {
    return std::nullopt;
  }
  if (!read_be(payload, at, 4, v)) return std::nullopt;
  msg.header.export_time =
      sim::SimTime{static_cast<std::int64_t>(v) * kNsPerSecond};
  if (!read_be(payload, at, 4, v)) return std::nullopt;
  msg.header.sequence = static_cast<std::uint32_t>(v);
  if (!read_be(payload, at, 4, v)) return std::nullopt;
  msg.header.observation_domain = static_cast<std::uint32_t>(v);

  while (at + 4 <= total_length) {
    const std::size_t set_start = at;
    std::uint64_t set_id = 0, set_len = 0;
    if (!read_be(payload, at, 2, set_id)) return std::nullopt;
    if (!read_be(payload, at, 2, set_len)) return std::nullopt;
    if (set_len < 4 || set_start + set_len > total_length) {
      return std::nullopt;
    }
    const std::size_t set_end = set_start + set_len;

    if (set_id == kTemplateSetId) {
      while (at + 4 <= set_end) {
        Template tmpl;
        if (!read_be(payload, at, 2, v)) return std::nullopt;
        tmpl.id = static_cast<std::uint16_t>(v);
        if (tmpl.id < kMinDataSetId) return std::nullopt;
        std::uint64_t field_count = 0;
        if (!read_be(payload, at, 2, field_count)) return std::nullopt;
        if (field_count == 0) return std::nullopt;  // withdrawals unsupported
        for (std::uint64_t i = 0; i < field_count; ++i) {
          std::uint64_t id = 0, width = 0;
          if (!read_be(payload, at, 2, id)) return std::nullopt;
          if (at > set_end) return std::nullopt;
          if (!read_be(payload, at, 2, width)) return std::nullopt;
          // Widths are capped at 8: every steelnet element fits a u64.
          if (width == 0 || width > 8 || at > set_end) return std::nullopt;
          auto fid = static_cast<FieldId>(id);
          if ((id & kEnterpriseBit) != 0) {
            std::uint64_t pen = 0;
            if (!read_be(payload, at, 4, pen)) return std::nullopt;
            if (at > set_end) return std::nullopt;
            // A foreign enterprise's element: keep the width so records
            // still tile, but bind its value to nothing.
            if (pen != kSteelnetPen) fid = FieldId::kForeignField;
          }
          tmpl.fields.push_back({fid, static_cast<std::uint8_t>(width)});
        }
        store.learn(session, msg.header.observation_domain, std::move(tmpl));
        ++msg.templates_learned;
      }
      at = set_end;  // trailing set padding (<= 3 octets)
    } else if (set_id >= kMinDataSetId) {
      const Template* tmpl =
          store.find(session, msg.header.observation_domain,
                     static_cast<std::uint16_t>(set_id));
      if (tmpl == nullptr || tmpl->record_bytes() == 0) {
        // Unknown template: count the payload as skipped records as best
        // we can (one opaque blob).
        ++msg.records_without_template;
        at = set_end;
        continue;
      }
      const std::size_t rb = tmpl->record_bytes();
      while (at + rb <= set_end) {
        ExportRecord r;
        for (const auto& f : tmpl->fields) {
          if (!read_be(payload, at, f.width, v)) return std::nullopt;
          assign_field(r, f.id, v);
        }
        msg.records.push_back(r);
      }
      // Whatever remains must be set padding; more than 3 octets means
      // the set length does not tile into records of this template.
      if (set_end - at > 3) return std::nullopt;
      at = set_end;
    } else {
      at = set_end;  // unknown low set id (e.g. options templates): skip
    }
  }
  return msg;
}

}  // namespace steelnet::flowmon
