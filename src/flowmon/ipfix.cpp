#include "flowmon/ipfix.hpp"

namespace steelnet::flowmon {

namespace {

constexpr std::size_t kHeaderBytes = 20;
constexpr std::uint16_t kTemplateSetId = 2;

void write_le(std::vector<std::uint8_t>& buf, std::uint64_t value,
              std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    buf.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void patch_u16(std::vector<std::uint8_t>& buf, std::size_t at,
               std::uint16_t value) {
  buf[at] = static_cast<std::uint8_t>(value);
  buf[at + 1] = static_cast<std::uint8_t>(value >> 8);
}

/// Bounded little-endian read; returns false on overrun.
bool read_le(const std::vector<std::uint8_t>& buf, std::size_t& at,
             std::size_t width, std::uint64_t& out) {
  if (at + width > buf.size()) return false;
  out = 0;
  for (std::size_t i = width; i-- > 0;) {
    out = (out << 8) | buf[at + i];
  }
  at += width;
  return true;
}

std::uint64_t field_value(const ExportRecord& r, FieldId id) {
  switch (id) {
    case FieldId::kOctets: return r.bytes;
    case FieldId::kPackets: return r.packets;
    case FieldId::kSrcMac: return r.key.src.bits();
    case FieldId::kDstMac: return r.key.dst.bits();
    case FieldId::kEndReason:
      return static_cast<std::uint64_t>(r.end_reason);
    case FieldId::kFirstSeenNs:
      return static_cast<std::uint64_t>(r.first_seen.nanos());
    case FieldId::kLastSeenNs:
      return static_cast<std::uint64_t>(r.last_seen.nanos());
    case FieldId::kVlanPcp: return r.key.pcp;
    case FieldId::kEtherType:
      return static_cast<std::uint64_t>(r.key.ethertype);
    case FieldId::kLayer2Octets: return r.wire_bytes;
    case FieldId::kMinIatNs:
      return static_cast<std::uint64_t>(r.min_iat.nanos());
    case FieldId::kMeanIatNs:
      return static_cast<std::uint64_t>(r.mean_iat.nanos());
    case FieldId::kJitterNs:
      return static_cast<std::uint64_t>(r.jitter.nanos());
  }
  return 0;
}

void assign_field(ExportRecord& r, FieldId id, std::uint64_t v) {
  switch (id) {
    case FieldId::kOctets: r.bytes = v; break;
    case FieldId::kPackets: r.packets = v; break;
    case FieldId::kSrcMac: r.key.src = net::MacAddress{v}; break;
    case FieldId::kDstMac: r.key.dst = net::MacAddress{v}; break;
    case FieldId::kEndReason:
      r.end_reason = static_cast<EndReason>(v);
      break;
    case FieldId::kFirstSeenNs:
      r.first_seen = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kLastSeenNs:
      r.last_seen = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kVlanPcp:
      r.key.pcp = static_cast<std::uint8_t>(v);
      break;
    case FieldId::kEtherType:
      r.key.ethertype = static_cast<net::EtherType>(v);
      break;
    case FieldId::kLayer2Octets: r.wire_bytes = v; break;
    case FieldId::kMinIatNs:
      r.min_iat = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kMeanIatNs:
      r.mean_iat = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
    case FieldId::kJitterNs:
      r.jitter = sim::SimTime{static_cast<std::int64_t>(v)};
      break;
  }
}

}  // namespace

std::size_t Template::record_bytes() const {
  std::size_t n = 0;
  for (const auto& f : fields) n += f.width;
  return n;
}

const Template& flow_template() {
  static const Template kTemplate{
      256,
      {{FieldId::kSrcMac, 6},
       {FieldId::kDstMac, 6},
       {FieldId::kEtherType, 2},
       {FieldId::kVlanPcp, 1},
       {FieldId::kPackets, 8},
       {FieldId::kOctets, 8},
       {FieldId::kLayer2Octets, 8},
       {FieldId::kFirstSeenNs, 8},
       {FieldId::kLastSeenNs, 8},
       {FieldId::kMinIatNs, 8},
       {FieldId::kMeanIatNs, 8},
       {FieldId::kJitterNs, 8},
       {FieldId::kEndReason, 1}}};
  return kTemplate;
}

ExportRecord to_export_record(const FlowRecord& r, EndReason reason) {
  ExportRecord e;
  e.key = r.key;
  e.packets = r.packets;
  e.bytes = r.bytes;
  e.wire_bytes = r.wire_bytes;
  e.first_seen = r.first_seen;
  e.last_seen = r.last_seen;
  e.min_iat = r.min_iat_or_zero();
  e.mean_iat = r.mean_iat();
  e.jitter = r.mean_jitter();
  e.end_reason = reason;
  return e;
}

void TemplateStore::learn(std::uint32_t domain, Template tmpl) {
  templates_[{domain, tmpl.id}] = std::move(tmpl);
}

const Template* TemplateStore::find(std::uint32_t domain,
                                    std::uint16_t template_id) const {
  const auto it = templates_.find({domain, template_id});
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> encode_message(
    const MessageHeader& header, const Template& tmpl, bool include_template,
    const std::vector<ExportRecord>& records) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kHeaderBytes + records.size() * tmpl.record_bytes() + 64);
  write_le(buf, header.version, 2);
  write_le(buf, 0, 2);  // total length, patched below
  write_le(buf, static_cast<std::uint64_t>(header.export_time.nanos()), 8);
  write_le(buf, header.sequence, 4);
  write_le(buf, header.observation_domain, 4);

  if (include_template) {
    const std::size_t set_start = buf.size();
    write_le(buf, kTemplateSetId, 2);
    write_le(buf, 0, 2);  // set length, patched below
    write_le(buf, tmpl.id, 2);
    write_le(buf, tmpl.fields.size(), 2);
    for (const auto& f : tmpl.fields) {
      write_le(buf, static_cast<std::uint64_t>(f.id), 2);
      write_le(buf, f.width, 2);
    }
    patch_u16(buf, set_start + 2,
              static_cast<std::uint16_t>(buf.size() - set_start));
  }

  if (!records.empty()) {
    const std::size_t set_start = buf.size();
    write_le(buf, tmpl.id, 2);
    write_le(buf, 0, 2);
    for (const auto& r : records) {
      for (const auto& f : tmpl.fields) {
        write_le(buf, field_value(r, f.id), f.width);
      }
    }
    patch_u16(buf, set_start + 2,
              static_cast<std::uint16_t>(buf.size() - set_start));
  }

  patch_u16(buf, 2, static_cast<std::uint16_t>(buf.size()));
  return buf;
}

std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& payload, TemplateStore& store) {
  std::size_t at = 0;
  std::uint64_t v = 0;
  DecodedMessage msg;

  if (!read_le(payload, at, 2, v)) return std::nullopt;
  msg.header.version = static_cast<std::uint16_t>(v);
  if (msg.header.version != MessageHeader::kVersion) return std::nullopt;
  if (!read_le(payload, at, 2, v)) return std::nullopt;
  const std::size_t total_length = v;
  if (total_length < kHeaderBytes || total_length > payload.size()) {
    return std::nullopt;
  }
  if (!read_le(payload, at, 8, v)) return std::nullopt;
  msg.header.export_time = sim::SimTime{static_cast<std::int64_t>(v)};
  if (!read_le(payload, at, 4, v)) return std::nullopt;
  msg.header.sequence = static_cast<std::uint32_t>(v);
  if (!read_le(payload, at, 4, v)) return std::nullopt;
  msg.header.observation_domain = static_cast<std::uint32_t>(v);

  while (at + 4 <= total_length) {
    const std::size_t set_start = at;
    std::uint64_t set_id = 0, set_len = 0;
    if (!read_le(payload, at, 2, set_id)) return std::nullopt;
    if (!read_le(payload, at, 2, set_len)) return std::nullopt;
    if (set_len < 4 || set_start + set_len > total_length) {
      return std::nullopt;
    }
    const std::size_t set_end = set_start + set_len;

    if (set_id == kTemplateSetId) {
      while (at + 4 <= set_end) {
        Template tmpl;
        if (!read_le(payload, at, 2, v)) return std::nullopt;
        tmpl.id = static_cast<std::uint16_t>(v);
        std::uint64_t field_count = 0;
        if (!read_le(payload, at, 2, field_count)) return std::nullopt;
        if (at + field_count * 4 > set_end) return std::nullopt;
        for (std::uint64_t i = 0; i < field_count; ++i) {
          std::uint64_t id = 0, width = 0;
          read_le(payload, at, 2, id);
          read_le(payload, at, 2, width);
          if (width == 0 || width > 8) return std::nullopt;
          tmpl.fields.push_back({static_cast<FieldId>(id),
                                 static_cast<std::uint8_t>(width)});
        }
        store.learn(msg.header.observation_domain, tmpl);
        ++msg.templates_learned;
      }
    } else if (set_id >= 256) {
      const Template* tmpl = store.find(msg.header.observation_domain,
                                        static_cast<std::uint16_t>(set_id));
      if (tmpl == nullptr || tmpl->record_bytes() == 0) {
        // Unknown template: count the payload as skipped records as best
        // we can (one opaque blob).
        ++msg.records_without_template;
        at = set_end;
        continue;
      }
      while (at + tmpl->record_bytes() <= set_end) {
        ExportRecord r;
        for (const auto& f : tmpl->fields) {
          if (!read_le(payload, at, f.width, v)) return std::nullopt;
          assign_field(r, f.id, v);
        }
        msg.records.push_back(r);
      }
      at = set_end;  // trailing padding, if any
    } else {
      at = set_end;  // unknown low set id: skip
    }
  }
  return msg;
}

}  // namespace steelnet::flowmon
