// steelnet::flowmon -- human- and machine-readable views of measured
// flows, for benches and offline analysis.
#pragma once

#include <string>
#include <vector>

#include "flowmon/collector.hpp"
#include "flowmon/federation.hpp"

namespace steelnet::flowmon {

/// Fixed-width console table of measured flows (top `limit` by bytes;
/// 0 = all), via core::TextTable.
[[nodiscard]] std::string flows_table(const std::vector<FlowView>& flows,
                                      std::size_t limit = 20);

/// CSV export of every measured flow (core::CsvWriter) -- one row per
/// flow, all FlowView fields, stable column order.
[[nodiscard]] std::string flows_csv(const std::vector<FlowView>& flows);

/// Per-tier (cells -> plant) pipeline-health table: offered vs received
/// records, sequence losses/reorders, template misses, transform drops,
/// re-exports, and export-lag mean/p95 per hop.
[[nodiscard]] std::string federation_table(const FederationResult& r);

/// The same rows as CSV (one row per tier, stable column order).
[[nodiscard]] std::string federation_csv(const FederationResult& r);

}  // namespace steelnet::flowmon
