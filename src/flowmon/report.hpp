// steelnet::flowmon -- human- and machine-readable views of measured
// flows, for benches and offline analysis.
#pragma once

#include <string>
#include <vector>

#include "flowmon/collector.hpp"

namespace steelnet::flowmon {

/// Fixed-width console table of measured flows (top `limit` by bytes;
/// 0 = all), via core::TextTable.
[[nodiscard]] std::string flows_table(const std::vector<FlowView>& flows,
                                      std::size_t limit = 20);

/// CSV export of every measured flow (core::CsvWriter) -- one row per
/// flow, all FlowView fields, stable column order.
[[nodiscard]] std::string flows_csv(const std::vector<FlowView>& flows);

}  // namespace steelnet::flowmon
