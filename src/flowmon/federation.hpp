// steelnet::flowmon -- the federated collector hierarchy scenario.
//
// The plant-scale telemetry pipeline the paper argues for: every
// production cell runs its own meter + cell-tier collector; cell
// collectors mediate (transform rules: domain rewrite, field drops) and
// re-export upward over the simulated network -- through the cell
// switch, a trunk, and the plant switch -- into one plant-tier
// collector. Every tier is instrumented via steelnet::obs, and the
// result carries a per-tier hop breakdown (export lag, sequence gaps,
// template misses, transform drops) with exact record-conservation
// checks: meter exports == cell received + cell losses, and cell
// re-exports == plant received + plant losses. Zero unexplained loss,
// by construction and by assertion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowmon/collector.hpp"
#include "flowmon/meter_point.hpp"

namespace steelnet::flowmon {

struct FederationSpec {
  std::size_t cells = 3;
  std::size_t hosts_per_cell = 3;
  /// Bounded bursty flows per host (close via idle timeout).
  std::size_t bursty_per_host = 3;
  /// Periodic vPLC-style flows per cell (open-ended; checkpointed).
  std::size_t vplc_per_cell = 6;
  sim::SimTime observation = sim::seconds(1);
  std::uint64_t seed = 11;
  /// Per-cell meter tuning (collector_mac / observation_domain are
  /// assigned by the scenario: domain = cell + 1).
  MeterConfig meter = [] {
    MeterConfig m;
    m.idle_timeout = sim::milliseconds(150);
    m.active_timeout = sim::milliseconds(400);
    m.export_interval = sim::milliseconds(50);
    return m;
  }();
  /// Per-cell mediation (upstream_mac is assigned by the scenario;
  /// rules.rewrite_domain defaults to 100 + cell; the cell-internal
  /// min-IAT field is dropped at the plant tier).
  ReExportConfig reexport = [] {
    ReExportConfig r;
    r.interval = sim::milliseconds(50);
    r.rules.drops = {FieldId::kMinIatNs};
    return r;
  }();
};

/// One tier's pipeline health -- a row of tab_flowmon's federation table.
struct TierRow {
  std::string tier;                  ///< "cell0".."cellN" or "plant"
  std::uint64_t offered = 0;         ///< records exported from below
  std::uint64_t received = 0;        ///< records absorbed at this tier
  std::uint64_t lost = 0;            ///< sequence-gap losses
  std::uint64_t reordered = 0;       ///< backward sequence steps
  std::uint64_t template_misses = 0; ///< data sets without a template
  std::uint64_t malformed = 0;
  std::uint64_t transform_dropped = 0;
  std::uint64_t reexported = 0;      ///< records pushed upstream
  std::size_t flows = 0;             ///< merged flows tracked
  double lag_mean_us = 0.0;          ///< export lag on arrival
  double lag_p95_us = 0.0;
};

struct FederationResult {
  std::vector<TierRow> cells;
  TierRow plant;
  /// sum(meter exports) == sum(cell received) + sum(cell lost)
  bool cell_conservation_ok = false;
  /// sum(cell re-exports) == plant received + plant lost
  bool plant_conservation_ok = false;
  std::size_t cell_flows_total = 0;
  std::uint64_t frames_sent = 0;
  /// Plant-tier merged-flow fingerprint; same seed => same value.
  std::uint64_t plant_fingerprint = 0;
  /// Deterministic metrics snapshot of the whole federation.
  std::string metrics_prom;
};

/// Builds the cells + trunks + plant topology, runs the workload for
/// spec.observation, flushes meters and mediators, drains, and returns
/// the per-tier view.
[[nodiscard]] FederationResult run_federation(const FederationSpec& spec);

}  // namespace steelnet::flowmon
