#include "flowmon/transform.hpp"

#include <algorithm>

namespace steelnet::flowmon {

CompiledTransform::CompiledTransform(const TransformRules& rules,
                                     const Template& input) {
  wire_.id = rules.rewrite_template_id != 0 ? rules.rewrite_template_id
                                            : input.id;
  min_packets_ = rules.min_packets;
  rewrite_domain_ = rules.rewrite_domain;
  for (const TemplateField& f : input.fields) {
    if (std::find(rules.drops.begin(), rules.drops.end(), f.id) !=
        rules.drops.end()) {
      continue;
    }
    FieldId out_id = f.id;
    for (const TransformRules::Remap& m : rules.remaps) {
      if (m.from == f.id) {
        out_id = m.to;
        break;
      }
    }
    Source src;
    src.from = f.id;
    for (const TransformRules::Scale& s : rules.scales) {
      if (s.field == f.id) {
        src.num = s.num == 0 ? 1 : s.num;
        src.den = s.den == 0 ? 1 : s.den;
        break;
      }
    }
    wire_.fields.push_back({out_id, f.width});
    sources_.push_back(src);
  }
}

std::uint64_t CompiledTransform::value_of(const ExportRecord& r,
                                          std::size_t field_index) const {
  const Source& src = sources_[field_index];
  const std::uint64_t v = field_value(r, src.from);
  // Split to dodge overflow of v * num for ns-sized values.
  return v / src.den * src.num + v % src.den * src.num / src.den;
}

std::vector<std::uint8_t> encode_transformed(
    const MessageHeader& header, const CompiledTransform& t,
    bool include_template, const std::vector<ExportRecord>& records) {
  return encode_message_fn(
      header, t.wire_template(), include_template, records.size(),
      [&](std::size_t r, std::size_t f) {
        return t.value_of(records[r], f);
      });
}

}  // namespace steelnet::flowmon
