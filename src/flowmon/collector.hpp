// steelnet::flowmon -- the collecting process.
//
// A CollectorNode is a network endpoint (one NIC, like HostNode) that
// receives flowmon export frames, learns templates, reassembles data
// records, and maintains the measured per-flow state the rest of the
// repo consumes: core::FlowStats for the §2.3 classifier, derived not
// from configuration but from cadence observed in-network. A flow is
//   * open-ended  if its latest record says the flow was still live
//     (active-timeout checkpoint or forced flush), and
//   * periodic    if its cadence is steady: enough packets and measured
//     jitter below a fraction of the mean inter-arrival time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/traffic_mix.hpp"
#include "flowmon/ipfix.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::flowmon {

/// Cadence-based deterministic-microflow detection knobs.
struct PeriodicityConfig {
  std::uint64_t min_packets = 8;
  /// jitter <= max(jitter_fraction * mean_iat, jitter_floor) => periodic.
  double jitter_fraction = 0.1;
  sim::SimTime jitter_floor = sim::microseconds(5);
};

struct CollectorCounters {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_filtered = 0;   ///< not ours / wrong ethertype
  std::uint64_t messages = 0;
  std::uint64_t malformed = 0;
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  /// Loss/sequence counters live on the obs metrics plane (obs::Counter
  /// converts implicitly to uint64_t, so accessors are unchanged).
  obs::Counter records_without_template;
  /// Gaps detected via IPFIX sequence numbers (per observation domain).
  obs::Counter lost_records;
};

/// Merged view of one measured flow, across export checkpoints and
/// cache incarnations (idle-expire + restart).
struct FlowView {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  sim::SimTime min_iat;
  sim::SimTime mean_iat;
  sim::SimTime jitter;
  std::uint32_t incarnations = 0;  ///< idle-expired-and-restarted count
  bool open_ended = false;
  bool periodic = false;

  [[nodiscard]] sim::SimTime duration() const {
    return last_seen - first_seen;
  }
  [[nodiscard]] std::size_t mean_packet_bytes() const {
    return packets == 0 ? 0 : static_cast<std::size_t>(bytes / packets);
  }
};

class CollectorNode : public net::Node {
 public:
  explicit CollectorNode(net::MacAddress mac, PeriodicityConfig cfg = {});

  void handle_frame(net::Frame frame, net::PortId in_port) override;

  [[nodiscard]] net::MacAddress mac() const { return mac_; }
  [[nodiscard]] const CollectorCounters& counters() const {
    return counters_;
  }

  /// All measured flows, merged, sorted by key (deterministic).
  [[nodiscard]] std::vector<FlowView> flows() const;

  /// Classifier inputs measured in-network -- drop-in replacement for
  /// core::generate_mix's synthesized stats, same ordering as flows().
  [[nodiscard]] std::vector<core::FlowStats> measured_stats() const;

  /// FNV-1a over every merged flow's fields -- pinned by golden tests:
  /// identical seeds must yield identical measured flow records.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Binds pipeline counters under `<name>/flowmon/...`.
  void register_metrics(obs::ObsHub& hub) const;

 private:
  struct FlowAccum {
    // Totals from finished incarnations (idle-expired flows that may
    // restart later).
    std::uint64_t done_packets = 0;
    std::uint64_t done_bytes = 0;
    std::uint64_t done_wire_bytes = 0;
    /// Latest record of the current incarnation (absolute totals).
    ExportRecord live;
    bool has_live = false;
    sim::SimTime first_seen;
    sim::SimTime last_seen;
    sim::SimTime min_iat = sim::SimTime::max();
    /// Cadence of the *latest* record -- the freshest estimate.
    sim::SimTime mean_iat;
    sim::SimTime jitter;
    std::uint64_t cadence_packets = 0;
    std::uint32_t incarnations = 0;
    bool ended = false;  ///< last record closed the flow
  };

  void absorb(const ExportRecord& r);
  [[nodiscard]] FlowView view_of(const FlowKey& key,
                                 const FlowAccum& a) const;

  net::MacAddress mac_;
  PeriodicityConfig cfg_;
  TemplateStore templates_;
  std::map<FlowKey, FlowAccum> flows_;
  std::map<std::uint32_t, std::uint32_t> next_sequence_;  ///< per domain
  CollectorCounters counters_;
};

}  // namespace steelnet::flowmon
