// steelnet::flowmon -- the collecting process.
//
// A CollectorNode is a network endpoint (one NIC, like HostNode) that
// receives flowmon export frames, learns templates, reassembles data
// records, and maintains the measured per-flow state the rest of the
// repo consumes: core::FlowStats for the §2.3 classifier, derived not
// from configuration but from cadence observed in-network. A flow is
//   * open-ended  if its latest record says the flow was still live
//     (active-timeout checkpoint or forced flush), and
//   * periodic    if its cadence is steady: enough packets and measured
//     jitter below a fraction of the mean inter-arrival time.
//
// Collectors federate: a cell-tier collector can re-export everything it
// absorbs upward to a plant-tier collector over the simulated network
// (enable_reexport), applying declarative mediation rules in between --
// the IPFIX mediator role of RFC 6183, with transform_rules.c lineage.
// Sequence accounting is per (exporter session, observation domain)
// stream with RFC 7011 serial-number arithmetic, so 32-bit wraparound
// and multi-exporter domains are handled correctly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/traffic_mix.hpp"
#include "flowmon/transform.hpp"
#include "net/host_node.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::flowmon {

/// Cadence-based deterministic-microflow detection knobs.
struct PeriodicityConfig {
  std::uint64_t min_packets = 8;
  /// jitter <= max(jitter_fraction * mean_iat, jitter_floor) => periodic.
  double jitter_fraction = 0.1;
  sim::SimTime jitter_floor = sim::microseconds(5);
};

struct CollectorCounters {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_filtered = 0;   ///< not ours / wrong ethertype
  std::uint64_t messages = 0;
  std::uint64_t malformed = 0;
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  /// Loss/sequence counters live on the obs metrics plane (obs::Counter
  /// converts implicitly to uint64_t, so accessors are unchanged).
  obs::Counter records_without_template;
  /// Records lost upstream, from IPFIX sequence gaps (serial arithmetic
  /// per exporter-session/domain stream).
  obs::Counter lost_records;
  /// Messages whose sequence stepped backwards (late or replayed).
  obs::Counter sequence_reordered;
  /// Records the mediation filter refused to re-export.
  obs::Counter transform_dropped;
  /// Records re-exported to the upstream tier.
  obs::Counter reexported_records;
  obs::Counter reexport_frames;
};

/// Mediation settings for the upstream hop of a federated collector.
struct ReExportConfig {
  net::MacAddress upstream_mac;
  /// Our exporting-process domain (rules.rewrite_domain overrides).
  std::uint32_t observation_domain = 100;
  sim::SimTime interval = sim::milliseconds(100);
  std::size_t max_records_per_frame = 16;
  std::uint32_t template_refresh_frames = 16;
  std::uint8_t pcp = 0;
  TransformRules rules;
};

/// Merged view of one measured flow, across export checkpoints and
/// cache incarnations (idle-expire + restart).
struct FlowView {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  sim::SimTime min_iat;
  sim::SimTime mean_iat;
  sim::SimTime jitter;
  std::uint32_t incarnations = 0;  ///< idle-expired-and-restarted count
  bool open_ended = false;
  bool periodic = false;

  [[nodiscard]] sim::SimTime duration() const {
    return last_seen - first_seen;
  }
  [[nodiscard]] std::size_t mean_packet_bytes() const {
    return packets == 0 ? 0 : static_cast<std::size_t>(bytes / packets);
  }
};

class CollectorNode : public net::Node {
 public:
  explicit CollectorNode(net::MacAddress mac, PeriodicityConfig cfg = {});

  void handle_frame(net::Frame frame, net::PortId in_port) override;

  /// Turns this collector into a mediator: everything absorbed from the
  /// meters below is queued and periodically re-exported -- through
  /// `cfg.rules` -- via `uplink` (the collector's management NIC, which
  /// must already be attached to the same network) toward
  /// `cfg.upstream_mac`. Call after the node is attached.
  void enable_reexport(net::HostNode& uplink, ReExportConfig cfg);

  /// Drains the pending re-export queue now (also runs periodically).
  /// Call once after the last meter flush to push the tail upstream.
  void flush_reexport();

  [[nodiscard]] net::MacAddress mac() const { return mac_; }
  [[nodiscard]] const CollectorCounters& counters() const {
    return counters_;
  }
  /// Per-record staleness on arrival (now - record.last_seen) in
  /// microseconds: batching + transport + detection delay. At the plant
  /// tier this includes the extra federation hop, so the tier delta
  /// isolates the hop's cost.
  [[nodiscard]] const sim::SampleSet& export_lag_us() const {
    return export_lag_us_;
  }
  [[nodiscard]] std::size_t tracked_flows() const { return flows_.size(); }
  [[nodiscard]] std::size_t pending_reexport() const {
    return pending_.size();
  }

  /// All measured flows, merged, sorted by key (deterministic).
  [[nodiscard]] std::vector<FlowView> flows() const;

  /// Classifier inputs measured in-network -- drop-in replacement for
  /// core::generate_mix's synthesized stats, same ordering as flows().
  [[nodiscard]] std::vector<core::FlowStats> measured_stats() const;

  /// FNV-1a over every merged flow's fields -- pinned by golden tests:
  /// identical seeds must yield identical measured flow records.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Binds pipeline counters, occupancy gauges and the export-lag
  /// histogram under `<name>/flowmon/...`.
  void register_metrics(obs::ObsHub& hub) const;

 private:
  struct FlowAccum {
    // Totals from finished incarnations (idle-expired flows that may
    // restart later).
    std::uint64_t done_packets = 0;
    std::uint64_t done_bytes = 0;
    std::uint64_t done_wire_bytes = 0;
    /// Latest record of the current incarnation (absolute totals).
    ExportRecord live;
    bool has_live = false;
    sim::SimTime first_seen;
    sim::SimTime last_seen;
    sim::SimTime min_iat = sim::SimTime::max();
    /// Cadence of the *latest* record -- the freshest estimate.
    sim::SimTime mean_iat;
    sim::SimTime jitter;
    std::uint64_t cadence_packets = 0;
    std::uint32_t incarnations = 0;
    bool ended = false;  ///< last record closed the flow
  };

  void absorb(const ExportRecord& r);
  void account_sequence(std::uint64_t session, std::uint32_t domain,
                        std::uint32_t sequence, std::uint32_t n_records);
  [[nodiscard]] FlowView view_of(const FlowKey& key,
                                 const FlowAccum& a) const;

  net::MacAddress mac_;
  PeriodicityConfig cfg_;
  TemplateStore templates_;
  std::map<FlowKey, FlowAccum> flows_;
  /// Expected next sequence per (exporter session, observation domain).
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint32_t>
      next_sequence_;
  CollectorCounters counters_;
  sim::SampleSet export_lag_us_;
  mutable sim::Histogram* lag_hist_ = nullptr;  ///< registry-owned

  // Mediator state (enable_reexport).
  bool reexport_enabled_ = false;
  net::HostNode* uplink_ = nullptr;
  ReExportConfig recfg_;
  CompiledTransform compiled_;
  std::vector<ExportRecord> pending_;
  std::uint32_t reexport_sequence_ = 0;
  std::uint32_t frames_since_template_ = 0;
  std::unique_ptr<sim::PeriodicTask> reexport_task_;
};

}  // namespace steelnet::flowmon
