#include "flowmon/flow_cache.hpp"

#include <algorithm>

namespace steelnet::flowmon {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowCache::FlowCache(std::size_t capacity)
    : FlowCache([capacity] {
        FlowCacheConfig cfg;
        cfg.capacity = capacity;
        cfg.engine = ExpiryEngine::kScan;  // legacy behaviour: no timers
        return cfg;
      }()) {}

FlowCache::FlowCache(const FlowCacheConfig& cfg)
    : cfg_(cfg),
      slots_(round_up_pow2(cfg.capacity)),
      load_cap_(slots_.size() / 4 * 3),
      wheel_(cfg.wheel_tick) {}

std::size_t FlowCache::probe(const FlowKey& key) const {
  std::size_t i = home(key);
  while (slots_[i].used && !(slots_[i].record.key == key)) {
    ++stats_.probes;
    i = (i + 1) & mask();
  }
  return i;
}

FlowRecord* FlowCache::find(const FlowKey& key) {
  ++stats_.lookups;
  const std::size_t i = probe(key);
  if (!slots_[i].used) return nullptr;
  ++stats_.hits;
  return &slots_[i].record;
}

const FlowRecord* FlowCache::find(const FlowKey& key) const {
  return const_cast<FlowCache*>(this)->find(key);
}

sim::SimTime FlowCache::deadline_of(const FlowRecord& r) const {
  const sim::SimTime idle = r.last_seen + cfg_.idle_timeout;
  const sim::SimTime active = r.last_export + cfg_.active_timeout;
  return idle < active ? idle : active;
}

FlowRecord* FlowCache::record(const net::Frame& frame, sim::SimTime now) {
  const FlowKey key = FlowKey::of(frame);
  ++stats_.lookups;
  const std::size_t i = probe(key);
  Slot& slot = slots_[i];
  if (!slot.used) {
    if (size_ >= load_cap_) {
      ++stats_.dropped_full;
      return nullptr;
    }
    ++stats_.inserts;
    ++size_;
    slot.used = true;
    slot.record = FlowRecord{};
    slot.record.key = key;
    slot.record.first_seen = now;
    slot.record.last_export = now;
    slot.record.last_seen = now;
    if (cfg_.engine == ExpiryEngine::kWheel) {
      // One deadline per flow; activity is picked up lazily at fire time.
      slot.timer = wheel_.arm(deadline_of(slot.record), i);
    }
  } else {
    ++stats_.hits;
    FlowRecord& r = slot.record;
    const sim::SimTime iat = now - r.last_seen;
    if (iat < r.min_iat) r.min_iat = iat;
    if (iat > r.max_iat) r.max_iat = iat;
    r.iat_sum_ns += iat.nanos();
    if (r.has_prev_iat) {
      const std::int64_t d = iat.nanos() - r.prev_iat.nanos();
      r.iat_jitter_sum_ns += d < 0 ? -d : d;
    }
    r.prev_iat = iat;
    r.has_prev_iat = true;
  }
  FlowRecord& r = slot.record;
  ++r.packets;
  r.bytes += frame.payload.size();
  r.wire_bytes += frame.wire_bytes();
  r.last_seen = now;
  return &r;
}

bool FlowCache::erase(const FlowKey& key) {
  std::size_t i = probe(key);
  if (!slots_[i].used) return false;
  ++stats_.erased;
  --size_;
  if (slots_[i].timer != sim::TimerWheel::kInvalidTimer) {
    wheel_.cancel(slots_[i].timer);
    slots_[i].timer = sim::TimerWheel::kInvalidTimer;
  }
  // Backward-shift compaction: close the hole by moving every following
  // cluster member whose home slot lies at or before the hole. Moved
  // records drag their wheel timer along via cookie rebinding.
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask();
  while (slots_[j].used) {
    const std::size_t h = home(slots_[j].record.key);
    // Does j's home precede the hole in circular probe order?
    const bool wraps = j < hole;
    const bool movable = wraps ? (h <= hole && h > j) : (h <= hole || h > j);
    if (movable) {
      slots_[hole].record = slots_[j].record;
      slots_[hole].timer = slots_[j].timer;
      if (slots_[hole].timer != sim::TimerWheel::kInvalidTimer) {
        wheel_.set_cookie(slots_[hole].timer, hole);
      }
      slots_[j].timer = sim::TimerWheel::kInvalidTimer;
      hole = j;
    }
    j = (j + 1) & mask();
  }
  slots_[hole].used = false;
  slots_[hole].timer = sim::TimerWheel::kInvalidTimer;
  return true;
}

void FlowCache::emit_candidates(sim::SimTime now, const ExportFn& fn) {
  // Canonical export order: (first_seen, FlowKey) -- independent of slot
  // layout and of which engine nominated the candidates, so wheel and
  // scan produce byte-identical export streams.
  std::sort(candidates_.begin(), candidates_.end(),
            [this](const auto& a, const auto& b) {
              const FlowRecord& ra = slots_[a.first].record;
              const FlowRecord& rb = slots_[b.first].record;
              if (!(ra.first_seen == rb.first_seen)) {
                return ra.first_seen < rb.first_seen;
              }
              return ra.key < rb.key;
            });
  evict_.clear();
  for (const auto& [idx, reason] : candidates_) {
    Slot& slot = slots_[idx];
    fn(slot.record, reason);
    if (reason == EndReason::kIdleTimeout) {
      evict_.push_back(slot.record.key);
    } else {
      slot.record.last_export = now;
      if (cfg_.engine == ExpiryEngine::kWheel &&
          slot.timer == sim::TimerWheel::kInvalidTimer) {
        slot.timer = wheel_.arm(deadline_of(slot.record), idx);
      }
    }
  }
  for (const FlowKey& key : evict_) erase(key);
}

std::size_t FlowCache::sweep(sim::SimTime now, const ExportFn& fn) {
  candidates_.clear();
  if (cfg_.engine == ExpiryEngine::kScan) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (!slot.used) continue;
      const FlowRecord& r = slot.record;
      if (now - r.last_seen >= cfg_.idle_timeout) {
        candidates_.emplace_back(static_cast<std::uint32_t>(i),
                                 EndReason::kIdleTimeout);
      } else if (now - r.last_export >= cfg_.active_timeout) {
        candidates_.emplace_back(static_cast<std::uint32_t>(i),
                                 EndReason::kActiveTimeout);
      }
    }
  } else {
    due_.clear();
    wheel_.advance(now, due_);
    for (const std::uint64_t cookie : due_) {
      const auto i = static_cast<std::uint32_t>(cookie);
      Slot& slot = slots_[i];
      if (!slot.used) continue;  // defensive: cancelled on erase
      slot.timer = sim::TimerWheel::kInvalidTimer;
      ++stats_.wheel_fires;
      const FlowRecord& r = slot.record;
      if (now - r.last_seen >= cfg_.idle_timeout) {
        candidates_.emplace_back(i, EndReason::kIdleTimeout);
      } else if (now - r.last_export >= cfg_.active_timeout) {
        candidates_.emplace_back(i, EndReason::kActiveTimeout);
      } else {
        // Fired early (tick rounding) or the flow saw traffic since the
        // deadline was computed: re-arm at the true deadline.
        slot.timer = wheel_.arm(deadline_of(r), i);
        ++stats_.wheel_rearms;
      }
    }
  }
  const std::size_t n = candidates_.size();
  emit_candidates(now, fn);
  return n;
}

std::size_t FlowCache::flush(const ExportFn& fn) {
  candidates_.clear();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].used) {
      candidates_.emplace_back(static_cast<std::uint32_t>(i),
                               EndReason::kForcedEnd);
    }
  }
  // Emit in canonical order, then drop everything wholesale (no
  // per-record compaction needed when the table empties).
  std::sort(candidates_.begin(), candidates_.end(),
            [this](const auto& a, const auto& b) {
              const FlowRecord& ra = slots_[a.first].record;
              const FlowRecord& rb = slots_[b.first].record;
              if (!(ra.first_seen == rb.first_seen)) {
                return ra.first_seen < rb.first_seen;
              }
              return ra.key < rb.key;
            });
  for (const auto& [idx, reason] : candidates_) {
    fn(slots_[idx].record, reason);
    slots_[idx].used = false;
    slots_[idx].timer = sim::TimerWheel::kInvalidTimer;
  }
  const std::size_t n = candidates_.size();
  stats_.erased += size_;
  size_ = 0;
  wheel_.clear();
  return n;
}

}  // namespace steelnet::flowmon
