#include "flowmon/flow_cache.hpp"

namespace steelnet::flowmon {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowCache::FlowCache(std::size_t capacity)
    : slots_(round_up_pow2(capacity)),
      load_cap_(slots_.size() / 4 * 3) {}

std::size_t FlowCache::probe(const FlowKey& key) const {
  std::size_t i = home(key);
  while (slots_[i].used && !(slots_[i].record.key == key)) {
    ++stats_.probes;
    i = (i + 1) & mask();
  }
  return i;
}

FlowRecord* FlowCache::find(const FlowKey& key) {
  ++stats_.lookups;
  const std::size_t i = probe(key);
  if (!slots_[i].used) return nullptr;
  ++stats_.hits;
  return &slots_[i].record;
}

const FlowRecord* FlowCache::find(const FlowKey& key) const {
  return const_cast<FlowCache*>(this)->find(key);
}

FlowRecord* FlowCache::record(const net::Frame& frame, sim::SimTime now) {
  const FlowKey key = FlowKey::of(frame);
  ++stats_.lookups;
  const std::size_t i = probe(key);
  Slot& slot = slots_[i];
  if (!slot.used) {
    if (size_ >= load_cap_) {
      ++stats_.dropped_full;
      return nullptr;
    }
    ++stats_.inserts;
    ++size_;
    slot.used = true;
    slot.record = FlowRecord{};
    slot.record.key = key;
    slot.record.first_seen = now;
    slot.record.last_export = now;
  } else {
    ++stats_.hits;
    FlowRecord& r = slot.record;
    const sim::SimTime iat = now - r.last_seen;
    if (iat < r.min_iat) r.min_iat = iat;
    if (iat > r.max_iat) r.max_iat = iat;
    r.iat_sum_ns += iat.nanos();
    if (r.has_prev_iat) {
      const std::int64_t d = iat.nanos() - r.prev_iat.nanos();
      r.iat_jitter_sum_ns += d < 0 ? -d : d;
    }
    r.prev_iat = iat;
    r.has_prev_iat = true;
  }
  FlowRecord& r = slot.record;
  ++r.packets;
  r.bytes += frame.payload.size();
  r.wire_bytes += frame.wire_bytes();
  r.last_seen = now;
  return &r;
}

bool FlowCache::erase(const FlowKey& key) {
  std::size_t i = probe(key);
  if (!slots_[i].used) return false;
  ++stats_.erased;
  --size_;
  // Backward-shift compaction: close the hole by moving every following
  // cluster member whose home slot lies at or before the hole.
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask();
  while (slots_[j].used) {
    const std::size_t h = home(slots_[j].record.key);
    // Does j's home precede the hole in circular probe order?
    const bool wraps = j < hole;
    const bool movable = wraps ? (h <= hole && h > j) : (h <= hole || h > j);
    if (movable) {
      slots_[hole].record = slots_[j].record;
      hole = j;
    }
    j = (j + 1) & mask();
  }
  slots_[hole].used = false;
  return true;
}

}  // namespace steelnet::flowmon
