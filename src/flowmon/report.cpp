#include "flowmon/report.hpp"

#include <algorithm>

#include "core/report.hpp"

namespace steelnet::flowmon {

std::string flows_table(const std::vector<FlowView>& flows,
                        std::size_t limit) {
  std::vector<const FlowView*> by_bytes;
  by_bytes.reserve(flows.size());
  for (const auto& f : flows) by_bytes.push_back(&f);
  std::stable_sort(by_bytes.begin(), by_bytes.end(),
                   [](const FlowView* a, const FlowView* b) {
                     return a->bytes > b->bytes;
                   });
  if (limit != 0 && by_bytes.size() > limit) by_bytes.resize(limit);

  core::TextTable table({"flow", "pkts", "bytes", "dur (ms)",
                         "mean IAT (us)", "jitter (us)", "inc", "periodic",
                         "open-ended"});
  for (const FlowView* f : by_bytes) {
    table.add_row({f->key.to_string(), std::to_string(f->packets),
                   std::to_string(f->bytes),
                   core::TextTable::num(f->duration().seconds() * 1e3),
                   core::TextTable::num(double(f->mean_iat.nanos()) / 1e3),
                   core::TextTable::num(double(f->jitter.nanos()) / 1e3),
                   std::to_string(f->incarnations),
                   f->periodic ? "yes" : "no",
                   f->open_ended ? "yes" : "no"});
  }
  return table.to_string();
}

std::string flows_csv(const std::vector<FlowView>& flows) {
  core::CsvWriter csv({"src", "dst", "pcp", "ethertype", "packets", "bytes",
                       "wire_bytes", "first_seen_ns", "last_seen_ns",
                       "min_iat_ns", "mean_iat_ns", "jitter_ns",
                       "incarnations", "periodic", "open_ended"});
  for (const auto& f : flows) {
    csv.add_row({f.key.src.to_string(), f.key.dst.to_string(),
                 std::to_string(unsigned(f.key.pcp)),
                 std::to_string(unsigned(f.key.ethertype)),
                 std::to_string(f.packets), std::to_string(f.bytes),
                 std::to_string(f.wire_bytes),
                 std::to_string(f.first_seen.nanos()),
                 std::to_string(f.last_seen.nanos()),
                 std::to_string(f.min_iat.nanos()),
                 std::to_string(f.mean_iat.nanos()),
                 std::to_string(f.jitter.nanos()),
                 std::to_string(f.incarnations), f.periodic ? "1" : "0",
                 f.open_ended ? "1" : "0"});
  }
  return csv.to_string();
}

namespace {

void add_tier_rows(core::TextTable& table, const TierRow& row) {
  table.add_row({row.tier, std::to_string(row.offered),
                 std::to_string(row.received), std::to_string(row.lost),
                 std::to_string(row.reordered),
                 std::to_string(row.template_misses),
                 std::to_string(row.malformed),
                 std::to_string(row.transform_dropped),
                 std::to_string(row.reexported), std::to_string(row.flows),
                 core::TextTable::num(row.lag_mean_us),
                 core::TextTable::num(row.lag_p95_us)});
}

}  // namespace

std::string federation_table(const FederationResult& r) {
  core::TextTable table({"tier", "offered", "received", "lost", "reord",
                         "tmpl-miss", "malformed", "xform-drop", "re-exp",
                         "flows", "lag mean (us)", "lag p95 (us)"});
  for (const TierRow& row : r.cells) add_tier_rows(table, row);
  add_tier_rows(table, r.plant);
  return table.to_string();
}

std::string federation_csv(const FederationResult& r) {
  core::CsvWriter csv({"tier", "offered", "received", "lost", "reordered",
                       "template_misses", "malformed", "transform_dropped",
                       "reexported", "flows", "lag_mean_us", "lag_p95_us"});
  const auto add = [&csv](const TierRow& row) {
    csv.add_row({row.tier, std::to_string(row.offered),
                 std::to_string(row.received), std::to_string(row.lost),
                 std::to_string(row.reordered),
                 std::to_string(row.template_misses),
                 std::to_string(row.malformed),
                 std::to_string(row.transform_dropped),
                 std::to_string(row.reexported), std::to_string(row.flows),
                 std::to_string(row.lag_mean_us),
                 std::to_string(row.lag_p95_us)});
  };
  for (const TierRow& row : r.cells) add(row);
  add(r.plant);
  return csv.to_string();
}

}  // namespace steelnet::flowmon
