#include "flowmon/federation.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "obs/hub.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace steelnet::flowmon {
namespace {

// Deterministic MAC plan: one OUI-like prefix per role, cell in the
// second octet group.
constexpr std::uint64_t kHostBase = 0x1a'0000'000001ULL;
constexpr std::uint64_t kSinkBase = 0x1c'0000'000001ULL;
constexpr std::uint64_t kMgmtBase = 0x1d'0000'000001ULL;
constexpr std::uint64_t kCellColBase = 0x1e'0000'000001ULL;
constexpr std::uint64_t kUplinkBase = 0x1f'0000'000001ULL;
constexpr std::uint64_t kFlowDstBase = 0x2c'0000'000001ULL;
constexpr std::uint64_t kPlantColMac = 0x20'0000'000001ULL;
constexpr std::uint64_t kCellStride = 0x100;

/// A self-scheduling traffic source: periodic (vPLC cadence) or bounded
/// with randomized gaps (bursty) -- the FlowSender idiom from
/// mix_scenario, trimmed to what the federation needs.
class CellFlow {
 public:
  struct Plan {
    net::MacAddress dst;
    net::EtherType ethertype = net::EtherType::kIpv4;
    std::uint8_t pcp = 0;
    std::size_t payload_bytes = 256;
    std::uint64_t total_frames = 0;  ///< 0 = unbounded (periodic flows)
    sim::SimTime start;
    bool periodic = false;
    sim::SimTime cycle;
    sim::SimTime gap_lo, gap_hi;
  };

  CellFlow(sim::Simulator& sim, net::HostNode& host, Plan plan, sim::Rng rng,
           sim::SimTime window_end, std::uint64_t& frames_sent)
      : sim_(sim),
        host_(host),
        plan_(plan),
        rng_(std::move(rng)),
        window_end_(window_end),
        frames_sent_(frames_sent) {
    sim_.schedule_at(plan_.start, [this] { fire(); });
  }

 private:
  void fire() {
    net::Frame frame = host_.network().frame_pool().make(plan_.payload_bytes);
    frame.dst = plan_.dst;
    frame.ethertype = plan_.ethertype;
    frame.pcp = plan_.pcp;
    frame.seq = sent_;
    host_.send(std::move(frame));
    ++frames_sent_;
    ++sent_;

    if (plan_.total_frames != 0 && sent_ >= plan_.total_frames) return;
    const sim::SimTime gap =
        plan_.periodic
            ? plan_.cycle
            : sim::SimTime{static_cast<std::int64_t>(rng_.uniform(
                  double(plan_.gap_lo.nanos()), double(plan_.gap_hi.nanos())))};
    const sim::SimTime next = sim_.now() + gap;
    if (next > window_end_) return;
    sim_.schedule_at(next, [this] { fire(); });
  }

  sim::Simulator& sim_;
  net::HostNode& host_;
  Plan plan_;
  sim::Rng rng_;
  sim::SimTime window_end_;
  std::uint64_t& frames_sent_;
  std::uint64_t sent_ = 0;
};

TierRow row_of(std::string tier, const CollectorNode& col) {
  TierRow row;
  row.tier = std::move(tier);
  const CollectorCounters& c = col.counters();
  row.received = c.records;
  row.lost = c.lost_records;
  row.reordered = c.sequence_reordered;
  row.template_misses = c.records_without_template;
  row.malformed = c.malformed;
  row.transform_dropped = c.transform_dropped;
  row.reexported = c.reexported_records;
  row.flows = col.tracked_flows();
  const sim::SampleSet& lag = col.export_lag_us();
  if (!lag.empty()) {
    row.lag_mean_us = lag.mean();
    row.lag_p95_us = lag.percentile(95.0);
  }
  return row;
}

}  // namespace

FederationResult run_federation(const FederationSpec& spec) {
  sim::Simulator sim;
  net::Network net{sim};
  obs::ObsHub hub{obs::TraceConfig{.trace_frames = false,
                                   .track_deliveries = false}};
  net.set_obs(&hub);

  // --- plant tier -------------------------------------------------------
  net::SwitchConfig plant_cfg;
  plant_cfg.num_ports = spec.cells + 1;
  auto& plant_sw = net.add_node<net::SwitchNode>("plant-sw", plant_cfg);
  auto& plant_col = net.add_node<CollectorNode>(
      "plant-col", net::MacAddress{kPlantColMac});
  const net::PortId plant_col_port = static_cast<net::PortId>(spec.cells);
  net.connect(plant_sw.id(), plant_col_port, plant_col.id(), 0);
  plant_sw.add_fdb_entry(plant_col.mac(), plant_col_port);

  // --- cells ------------------------------------------------------------
  struct Cell {
    net::SwitchNode* sw = nullptr;
    std::vector<net::HostNode*> hosts;
    net::HostNode* uplink = nullptr;
    CollectorNode* col = nullptr;
    std::unique_ptr<MeterPoint> meter;
  };
  std::vector<Cell> cells{spec.cells};
  std::uint64_t next_dst = 0;
  FederationResult result;
  sim::Rng root{spec.seed};
  std::vector<std::unique_ptr<CellFlow>> flows;

  for (std::size_t c = 0; c < spec.cells; ++c) {
    Cell& cell = cells[c];
    const std::string label = "cell" + std::to_string(c);
    const std::uint64_t base = c * kCellStride;

    net::SwitchConfig sw_cfg;
    // hosts + sink + meter mgmt + cell collector + uplink NIC + trunk.
    sw_cfg.num_ports = spec.hosts_per_cell + 5;
    cell.sw = &net.add_node<net::SwitchNode>(label + "-sw", sw_cfg);

    net::PortId port = 0;
    for (std::size_t i = 0; i < spec.hosts_per_cell; ++i) {
      auto& h = net.add_node<net::HostNode>(
          label + "-h" + std::to_string(i),
          net::MacAddress{kHostBase + base + i});
      net.connect(cell.sw->id(), port++, h.id(), net::HostNode::kNicPort);
      cell.hosts.push_back(&h);
    }
    auto& sink = net.add_node<net::HostNode>(
        label + "-sink", net::MacAddress{kSinkBase + base});
    const net::PortId sink_port = port++;
    net.connect(cell.sw->id(), sink_port, sink.id(), net::HostNode::kNicPort);

    auto& mgmt = net.add_node<net::HostNode>(
        label + "-mgmt", net::MacAddress{kMgmtBase + base});
    net.connect(cell.sw->id(), port++, mgmt.id(), net::HostNode::kNicPort);

    cell.col = &net.add_node<CollectorNode>(
        label + "-col", net::MacAddress{kCellColBase + base});
    const net::PortId col_port = port++;
    net.connect(cell.sw->id(), col_port, cell.col->id(), 0);
    cell.sw->add_fdb_entry(cell.col->mac(), col_port);

    cell.uplink = &net.add_node<net::HostNode>(
        label + "-uplink", net::MacAddress{kUplinkBase + base});
    net.connect(cell.sw->id(), port++, cell.uplink->id(),
                net::HostNode::kNicPort);

    // Trunk to the plant switch; the plant collector is reached through it.
    const net::PortId trunk_port = port++;
    net.connect(cell.sw->id(), trunk_port, plant_sw.id(),
                static_cast<net::PortId>(c));
    cell.sw->add_fdb_entry(plant_col.mac(), trunk_port);

    // Meter on the cell switch, exporting to the cell collector with a
    // per-cell observation domain.
    MeterConfig meter_cfg = spec.meter;
    meter_cfg.collector_mac = cell.col->mac();
    meter_cfg.observation_domain = static_cast<std::uint32_t>(c + 1);
    cell.meter = std::make_unique<MeterPoint>(*cell.sw, mgmt, meter_cfg);
    cell.meter->register_metrics(hub, label + "-sw");

    // Cell collector mediates upward: per-cell re-export domain, the
    // spec's transform rules.
    ReExportConfig re = spec.reexport;
    re.upstream_mac = plant_col.mac();
    if (re.rules.rewrite_domain == 0) {
      re.rules.rewrite_domain = static_cast<std::uint32_t>(100 + c);
    }
    cell.col->enable_reexport(*cell.uplink, re);
    cell.col->register_metrics(hub);

    // --- offered workload for this cell --------------------------------
    const double window_s = spec.observation.seconds();
    sim::Rng cell_rng = root.derive(label);
    auto add_flow = [&](net::HostNode& host, CellFlow::Plan plan,
                        sim::Rng rng) {
      plan.dst = net::MacAddress{kFlowDstBase + next_dst++};
      cell.sw->add_fdb_entry(plan.dst, sink_port);
      flows.push_back(std::make_unique<CellFlow>(sim, host, plan,
                                                 std::move(rng),
                                                 spec.observation,
                                                 result.frames_sent));
    };
    sim::Rng bursty_rng = cell_rng.derive("bursty");
    for (std::size_t h = 0; h < spec.hosts_per_cell; ++h) {
      for (std::size_t f = 0; f < spec.bursty_per_host; ++f) {
        CellFlow::Plan p;
        p.payload_bytes = 600;
        p.total_frames =
            static_cast<std::uint64_t>(bursty_rng.uniform(4, 40));
        p.start = sim::SimTime{static_cast<std::int64_t>(
            bursty_rng.uniform(0, 0.4 * window_s * 1e9))};
        p.gap_lo = sim::microseconds(50);
        p.gap_hi = sim::microseconds(500);
        add_flow(*cell.hosts[h], p, bursty_rng.fork());
      }
    }
    sim::Rng vplc_rng = cell_rng.derive("vplc");
    for (std::size_t f = 0; f < spec.vplc_per_cell; ++f) {
      CellFlow::Plan p;
      p.ethertype = net::EtherType::kProfinetRt;
      p.pcp = 6;
      p.periodic = true;
      p.cycle = sim::SimTime{
          static_cast<std::int64_t>(vplc_rng.uniform(1e6, 8e6))};
      p.payload_bytes =
          static_cast<std::size_t>(vplc_rng.uniform(40, 250));
      p.start = sim::SimTime{
          static_cast<std::int64_t>(vplc_rng.uniform(0, 1e6))};
      add_flow(*cell.hosts[f % spec.hosts_per_cell], p, vplc_rng.fork());
    }
  }
  plant_col.register_metrics(hub);

  // --- run, flush tier by tier, drain -----------------------------------
  sim.run_until(spec.observation);
  for (Cell& cell : cells) cell.meter->flush();
  // Let the final meter exports reach the cell collectors...
  sim.run_until(spec.observation + sim::milliseconds(20));
  // ...push the mediated tail upstream...
  for (Cell& cell : cells) cell.col->flush_reexport();
  // ...and let it land at the plant collector.
  sim.run_until(spec.observation + sim::milliseconds(40));

  // --- per-tier rows + conservation -------------------------------------
  std::uint64_t meter_exports_total = 0;
  std::uint64_t cell_received_total = 0;
  std::uint64_t cell_lost_total = 0;
  std::uint64_t reexported_total = 0;
  for (std::size_t c = 0; c < spec.cells; ++c) {
    Cell& cell = cells[c];
    TierRow row = row_of("cell" + std::to_string(c), *cell.col);
    row.offered = cell.meter->stats().records_exported;
    meter_exports_total += row.offered;
    cell_received_total += row.received;
    cell_lost_total += row.lost;
    reexported_total += row.reexported;
    result.cell_flows_total += row.flows;
    result.cells.push_back(std::move(row));
  }
  result.plant = row_of("plant", plant_col);
  result.plant.offered = reexported_total;
  result.cell_conservation_ok =
      meter_exports_total == cell_received_total + cell_lost_total;
  result.plant_conservation_ok =
      reexported_total == result.plant.received + result.plant.lost;
  result.plant_fingerprint = plant_col.fingerprint();
  // Render metrics while the meters (whose bound counters live in the
  // registry) are still alive; only then detach them from their nodes.
  result.metrics_prom = hub.metrics().to_prometheus();
  for (Cell& cell : cells) cell.meter.reset();
  return result;
}

}  // namespace steelnet::flowmon
