#include "flowmon/meter_point.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::flowmon {

namespace {

FlowCacheConfig cache_config(const MeterConfig& cfg) {
  FlowCacheConfig c;
  c.capacity = cfg.cache_capacity;
  c.idle_timeout = cfg.idle_timeout;
  c.active_timeout = cfg.active_timeout;
  c.engine = cfg.expiry_engine;
  c.wheel_tick = std::min(cfg.wheel_tick, cfg.export_interval);
  return c;
}

}  // namespace

MeterPoint::MeterPoint(net::Node& observed, net::HostNode& export_nic,
                       MeterConfig cfg)
    : observed_(observed),
      export_nic_(export_nic),
      cfg_(cfg),
      cache_(cache_config(cfg)) {
  observed_.add_frame_observer(this);
  sim::Simulator& sim = observed_.network().sim();
  sweeper_ = std::make_unique<sim::PeriodicTask>(
      sim, sim.now() + cfg_.export_interval, cfg_.export_interval,
      [this] { sweep(); });
}

MeterPoint::~MeterPoint() { observed_.remove_frame_observer(this); }

void MeterPoint::on_frame(const net::Frame& frame, net::PortId in_port) {
  (void)in_port;
  if (!cfg_.meter_exports &&
      frame.ethertype == net::EtherType::kFlowmonExport) {
    ++stats_.frames_ignored;
    return;
  }
  ++stats_.frames_seen;
  cache_.record(frame, observed_.network().sim().now());
}

void MeterPoint::sweep() {
  const sim::SimTime now = observed_.network().sim().now();
  std::vector<ExportRecord> out;
  cache_.sweep(now, [&](const FlowRecord& r, EndReason reason) {
    out.push_back(to_export_record(r, reason));
    if (reason == EndReason::kIdleTimeout) {
      ++stats_.idle_expired;
    } else {
      ++stats_.active_checkpoints;
    }
  });
  if (!out.empty()) export_records(std::move(out));
}

void MeterPoint::flush() {
  std::vector<ExportRecord> out;
  cache_.flush([&](const FlowRecord& r, EndReason reason) {
    out.push_back(to_export_record(r, reason));
    ++stats_.flushed;
  });
  if (!out.empty()) export_records(std::move(out));
}

void MeterPoint::export_records(std::vector<ExportRecord> records) {
  const sim::SimTime now = observed_.network().sim().now();
  for (std::size_t off = 0; off < records.size();
       off += cfg_.max_records_per_frame) {
    const std::size_t n =
        std::min(cfg_.max_records_per_frame, records.size() - off);
    const std::vector<ExportRecord> chunk(records.begin() + off,
                                          records.begin() + off + n);
    const bool with_template = frames_since_template_ == 0;
    if (++frames_since_template_ >= cfg_.template_refresh_frames) {
      frames_since_template_ = 0;
    }

    MessageHeader header;
    header.observation_domain = cfg_.observation_domain;
    header.sequence = sequence_;
    header.export_time = now;
    sequence_ += static_cast<std::uint32_t>(n);

    net::Frame frame;
    frame.dst = cfg_.collector_mac;
    frame.ethertype = net::EtherType::kFlowmonExport;
    frame.pcp = cfg_.export_pcp;
    frame.payload =
        encode_message(header, flow_template(), with_template, chunk);
    export_nic_.send(std::move(frame));
    ++stats_.export_frames;
    stats_.records_exported += n;
  }
}

std::optional<sim::SimTime> MeterPoint::last_seen(const FlowKey& key) const {
  const FlowRecord* r = cache_.find(key);
  if (r == nullptr) return std::nullopt;
  return r->last_seen;
}

std::optional<sim::SimTime> MeterPoint::last_seen_from(
    net::MacAddress src) const {
  std::optional<sim::SimTime> best;
  cache_.for_each([&](const FlowRecord& r) {
    if (r.key.src == src && (!best || r.last_seen > *best)) {
      best = r.last_seen;
    }
  });
  return best;
}

std::optional<std::int64_t> MeterPoint::silent_cycles(
    const FlowKey& key, sim::SimTime cycle, sim::SimTime now) const {
  const auto seen = last_seen(key);
  if (!seen || cycle <= sim::SimTime::zero()) return std::nullopt;
  return (now - *seen) / cycle;
}

void MeterPoint::register_metrics(obs::ObsHub& hub) const {
  register_metrics(hub, observed_.name());
}

void MeterPoint::register_metrics(obs::ObsHub& hub,
                                  const std::string& node_label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({node_label, "flowmon", "frames_seen"},
                   &stats_.frames_seen);
  reg.bind_counter({node_label, "flowmon", "frames_ignored"},
                   &stats_.frames_ignored);
  reg.bind_counter({node_label, "flowmon", "records_exported"},
                   &stats_.records_exported);
  reg.bind_counter({node_label, "flowmon", "export_frames"},
                   &stats_.export_frames);
  reg.bind_counter({node_label, "flowmon", "idle_expired"},
                   &stats_.idle_expired);
  reg.bind_counter({node_label, "flowmon", "active_checkpoints"},
                   &stats_.active_checkpoints);
  reg.bind_counter({node_label, "flowmon", "flushed"}, &stats_.flushed);
  const FlowCacheStats& cs = cache_.stats();
  reg.bind_counter({node_label, "flowcache", "lookups"}, &cs.lookups);
  reg.bind_counter({node_label, "flowcache", "hits"}, &cs.hits);
  reg.bind_counter({node_label, "flowcache", "inserts"}, &cs.inserts);
  reg.bind_counter({node_label, "flowcache", "erased"}, &cs.erased);
  reg.bind_counter({node_label, "flowcache", "probes"}, &cs.probes);
  reg.bind_counter({node_label, "flowcache", "dropped_full"},
                   &cs.dropped_full);
  reg.bind_counter({node_label, "flowcache", "wheel_fires"},
                   &cs.wheel_fires);
  reg.bind_counter({node_label, "flowcache", "wheel_rearms"},
                   &cs.wheel_rearms);
  reg.bind_gauge({node_label, "flowcache", "occupancy"},
                 [this] { return static_cast<double>(cache_.size()); });
}

std::function<std::optional<sim::SimTime>()> make_liveness_probe(
    const MeterPoint& meter, net::MacAddress src) {
  return [&meter, src] { return meter.last_seen_from(src); };
}

}  // namespace steelnet::flowmon
