// steelnet::flowmon -- the measured §2.3 workload.
//
// Where core::generate_mix *synthesizes* FlowStats offline, this scenario
// actually runs the mixed DC + vPLC workload through a simulated switch,
// meters it in-network with a MeterPoint, ships IPFIX-style records to a
// CollectorNode over the same network, and returns classifier inputs that
// were *measured*, not configured. Volumes and the observation window are
// scaled down (seconds, megabytes) so the bench stays laptop-fast; the
// class boundaries scale with them (thresholds()), preserving the
// taxonomy's shape -- including the §2.3 punchline that never-ending
// deterministic microflows are recognized from cadence alone.
#pragma once

#include <cstdint>
#include <vector>

#include "core/traffic_mix.hpp"
#include "flowmon/collector.hpp"
#include "flowmon/meter_point.hpp"

namespace steelnet::flowmon {

struct MeasuredMixSpec {
  std::size_t mice = 350;
  std::size_t medium = 60;
  std::size_t elephants = 8;
  std::size_t vplc_flows = 40;
  /// Hosts originating the DC-side (mice/medium/elephant) flows, and
  /// hosts dedicated to vPLC traffic (own NICs, so bulk queueing cannot
  /// disturb the control cadence -- as a real deployment would separate
  /// them).
  std::size_t dc_hosts = 6;
  std::size_t vplc_hosts = 4;
  sim::SimTime observation = sim::seconds(2);
  std::uint64_t seed = 7;
  MeterConfig meter;  ///< collector_mac is filled in by the scenario

  /// Class boundaries scaled to the shrunken volumes: the elephant
  /// boundary drops from 1 GB (hour-long observation) to 1 MB
  /// (2 s window); mice and the microflow payload ceiling are unscaled.
  [[nodiscard]] core::ClassifierThresholds thresholds() const {
    core::ClassifierThresholds t;
    t.elephant_min_bytes = 1024ull * 1024;
    return t;
  }
};

struct MeasuredMixResult {
  /// Measured flows as seen by the collector (sorted by key).
  std::vector<FlowView> flows;
  /// The same flows as classifier inputs.
  std::vector<core::FlowStats> measured;
  MeterStats meter;
  FlowCacheStats cache;
  CollectorCounters collector;
  /// Ground truth for cross-checks: flows configured, frames sent.
  std::size_t flows_offered = 0;
  std::uint64_t frames_sent = 0;
  /// Collector fingerprint -- identical seeds must reproduce it exactly.
  std::uint64_t fingerprint = 0;
};

/// Builds the star network (senders + switch + sink + export NIC +
/// collector), runs the workload for spec.observation, flushes the meter,
/// drains the simulator, and returns the measured view.
[[nodiscard]] MeasuredMixResult run_measured_mix(const MeasuredMixSpec& spec);

}  // namespace steelnet::flowmon
