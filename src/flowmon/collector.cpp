#include "flowmon/collector.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::flowmon {

CollectorNode::CollectorNode(net::MacAddress mac, PeriodicityConfig cfg)
    : mac_(mac), cfg_(cfg) {}

void CollectorNode::account_sequence(std::uint64_t session,
                                     std::uint32_t domain,
                                     std::uint32_t sequence,
                                     std::uint32_t n_records) {
  // RFC 7011 sequence accounting with serial-number arithmetic: the
  // header carries the count of data records sent before this message on
  // this (exporter session, domain) stream, modulo 2^32. A forward gap
  // (< 2^31) means lost records; a backward step is a late or replayed
  // message and must not be charged as loss. Exporters start at 0, so
  // even the first message from a new stream reveals records lost before
  // first contact.
  const auto stream = std::make_pair(session, domain);
  const auto it = next_sequence_.find(stream);
  const std::uint32_t expected = it != next_sequence_.end() ? it->second : 0;
  const std::uint32_t gap = sequence - expected;  // wraps mod 2^32
  if (gap == 0) {
    next_sequence_[stream] = sequence + n_records;
  } else if (gap < 0x8000'0000u) {
    counters_.lost_records += gap;
    next_sequence_[stream] = sequence + n_records;  // resync forward
  } else {
    ++counters_.sequence_reordered;  // stale message; keep expectation
  }
}

void CollectorNode::handle_frame(net::Frame frame, net::PortId in_port) {
  observe_frame(frame, in_port);
  ++counters_.frames_in;
  if ((frame.dst != mac_ && !frame.dst.is_broadcast()) ||
      frame.ethertype != net::EtherType::kFlowmonExport) {
    ++counters_.frames_filtered;
    return;
  }
  // Templates and sequence streams are scoped by exporter session; two
  // exporters sharing a domain number can no longer clobber each other.
  const std::uint64_t session = frame.src.bits();
  const auto msg = decode_message(frame.payload, templates_, session);
  if (!msg.has_value()) {
    ++counters_.malformed;
    return;
  }
  ++counters_.messages;
  counters_.templates_learned += msg->templates_learned;
  counters_.records_without_template += msg->records_without_template;
  account_sequence(session, msg->header.observation_domain,
                   msg->header.sequence,
                   static_cast<std::uint32_t>(msg->records.size()));

  const bool timed = attached();
  const sim::SimTime now = timed ? network().sim().now() : sim::SimTime{};
  for (const ExportRecord& r : msg->records) {
    ++counters_.records;
    if (timed) {
      const double lag_us =
          static_cast<double>((now - r.last_seen).nanos()) / 1000.0;
      export_lag_us_.add(lag_us);
      if (lag_hist_ != nullptr) lag_hist_->add(lag_us);
    }
    absorb(r);
  }
}

void CollectorNode::absorb(const ExportRecord& r) {
  FlowAccum& a = flows_[r.key];
  const bool first_record = a.incarnations == 0 && !a.has_live;
  if (first_record || r.first_seen < a.first_seen) {
    a.first_seen = r.first_seen;
  }
  if (first_record || r.last_seen > a.last_seen) a.last_seen = r.last_seen;
  // Only multi-packet records carry a measured minimum IAT. Decoded
  // records are wire data (an exporter bug or a corrupted-but-parseable
  // frame can carry the SimTime::max() sentinel), so the sentinel is
  // rejected here too, not just at view time.
  if (r.packets >= 2 && r.min_iat != sim::SimTime::max() &&
      r.min_iat < a.min_iat) {
    a.min_iat = r.min_iat;
  }
  // Keep the cadence estimate from the best-sampled record.
  if (r.packets >= a.cadence_packets) {
    a.cadence_packets = r.packets;
    a.mean_iat = r.mean_iat;
    a.jitter = r.jitter;
  }

  if (reexport_enabled_) {
    if (compiled_.keep(r)) {
      pending_.push_back(r);
    } else {
      ++counters_.transform_dropped;
    }
  }

  // Records carry absolute totals since their incarnation began, so a
  // checkpoint overwrites the live record; a closing record folds the
  // incarnation into the finished totals.
  a.live = r;
  a.has_live = true;
  if (r.end_reason == EndReason::kActiveTimeout) {
    a.ended = false;
    return;
  }
  a.done_packets += r.packets;
  a.done_bytes += r.bytes;
  a.done_wire_bytes += r.wire_bytes;
  a.has_live = false;
  ++a.incarnations;
  // A forced flush means the observation window closed on a still-running
  // flow -- that is precisely an open-ended flow.
  a.ended = r.end_reason != EndReason::kForcedEnd;
}

void CollectorNode::enable_reexport(net::HostNode& uplink, ReExportConfig cfg) {
  uplink_ = &uplink;
  recfg_ = std::move(cfg);
  compiled_ = CompiledTransform{recfg_.rules, flow_template()};
  reexport_enabled_ = true;
  if (attached()) {
    sim::Simulator& sim = network().sim();
    reexport_task_ = std::make_unique<sim::PeriodicTask>(
        sim, sim.now() + recfg_.interval, recfg_.interval,
        [this] { flush_reexport(); });
  }
}

void CollectorNode::flush_reexport() {
  if (!reexport_enabled_ || pending_.empty()) return;
  const sim::SimTime now =
      attached() ? network().sim().now() : sim::SimTime{};
  for (std::size_t off = 0; off < pending_.size();
       off += recfg_.max_records_per_frame) {
    const std::size_t n =
        std::min(recfg_.max_records_per_frame, pending_.size() - off);
    const std::vector<ExportRecord> chunk(pending_.begin() + off,
                                          pending_.begin() + off + n);
    const bool with_template = frames_since_template_ == 0;
    if (++frames_since_template_ >= recfg_.template_refresh_frames) {
      frames_since_template_ = 0;
    }

    MessageHeader header;
    header.observation_domain =
        compiled_.domain_or(recfg_.observation_domain);
    header.sequence = reexport_sequence_;
    header.export_time = now;
    reexport_sequence_ += static_cast<std::uint32_t>(n);

    net::Frame frame;
    frame.dst = recfg_.upstream_mac;
    frame.ethertype = net::EtherType::kFlowmonExport;
    frame.pcp = recfg_.pcp;
    frame.payload = encode_transformed(header, compiled_, with_template, chunk);
    uplink_->send(std::move(frame));
    ++counters_.reexport_frames;
    counters_.reexported_records += n;
  }
  pending_.clear();
}

FlowView CollectorNode::view_of(const FlowKey& key,
                                const FlowAccum& a) const {
  FlowView v;
  v.key = key;
  v.packets = a.done_packets + (a.has_live ? a.live.packets : 0);
  v.bytes = a.done_bytes + (a.has_live ? a.live.bytes : 0);
  v.wire_bytes = a.done_wire_bytes + (a.has_live ? a.live.wire_bytes : 0);
  v.first_seen = a.first_seen;
  v.last_seen = a.last_seen;
  v.min_iat = a.min_iat == sim::SimTime::max() ? sim::SimTime::zero()
                                               : a.min_iat;
  v.mean_iat = a.mean_iat;
  v.jitter = a.jitter;
  v.incarnations = a.incarnations + (a.has_live ? 1 : 0);
  v.open_ended = !a.ended;
  const sim::SimTime tolerance{std::max<std::int64_t>(
      static_cast<std::int64_t>(cfg_.jitter_fraction *
                                double(a.mean_iat.nanos())),
      cfg_.jitter_floor.nanos())};
  v.periodic = a.cadence_packets >= cfg_.min_packets &&
               a.mean_iat > sim::SimTime::zero() && a.jitter <= tolerance;
  return v;
}

std::vector<FlowView> CollectorNode::flows() const {
  std::vector<FlowView> out;
  out.reserve(flows_.size());
  for (const auto& [key, accum] : flows_) out.push_back(view_of(key, accum));
  return out;
}

std::vector<core::FlowStats> CollectorNode::measured_stats() const {
  std::vector<core::FlowStats> out;
  out.reserve(flows_.size());
  for (const FlowView& v : flows()) {
    core::FlowStats s;
    s.total_bytes = v.bytes;
    s.duration = v.duration();
    s.mean_packet_bytes = v.mean_packet_bytes();
    s.periodic = v.periodic;
    s.open_ended = v.open_ended;
    out.push_back(s);
  }
  return out;
}

std::uint64_t CollectorNode::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const FlowView& v : flows()) {
    mix(v.key.src.bits());
    mix(v.key.dst.bits());
    mix((std::uint64_t(v.key.pcp) << 16) |
        std::uint64_t(static_cast<std::uint16_t>(v.key.ethertype)));
    mix(v.packets);
    mix(v.bytes);
    mix(v.wire_bytes);
    mix(static_cast<std::uint64_t>(v.first_seen.nanos()));
    mix(static_cast<std::uint64_t>(v.last_seen.nanos()));
    mix(static_cast<std::uint64_t>(v.mean_iat.nanos()));
    mix(static_cast<std::uint64_t>(v.jitter.nanos()));
    mix((std::uint64_t(v.open_ended) << 1) | std::uint64_t(v.periodic));
  }
  return h;
}

void CollectorNode::register_metrics(obs::ObsHub& hub) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const std::string& node = name();
  reg.bind_counter({node, "flowmon", "frames_in"}, &counters_.frames_in);
  reg.bind_counter({node, "flowmon", "frames_filtered"},
                   &counters_.frames_filtered);
  reg.bind_counter({node, "flowmon", "messages"}, &counters_.messages);
  reg.bind_counter({node, "flowmon", "malformed"}, &counters_.malformed);
  reg.bind_counter({node, "flowmon", "records"}, &counters_.records);
  reg.bind_counter({node, "flowmon", "templates_learned"},
                   &counters_.templates_learned);
  reg.bind_counter({node, "flowmon", "records_without_template"},
                   &counters_.records_without_template);
  reg.bind_counter({node, "flowmon", "lost_records"},
                   &counters_.lost_records);
  reg.bind_counter({node, "flowmon", "sequence_reordered"},
                   &counters_.sequence_reordered);
  reg.bind_counter({node, "flowmon", "transform_dropped"},
                   &counters_.transform_dropped);
  reg.bind_counter({node, "flowmon", "reexported_records"},
                   &counters_.reexported_records);
  reg.bind_counter({node, "flowmon", "reexport_frames"},
                   &counters_.reexport_frames);
  reg.bind_gauge({node, "flowmon", "tracked_flows"},
                 [this] { return static_cast<double>(flows_.size()); });
  reg.bind_gauge({node, "flowmon", "pending_reexport"},
                 [this] { return static_cast<double>(pending_.size()); });
  lag_hist_ = &reg.make_histogram({node, "flowmon", "export_lag_us"}, 0.0,
                                  1'000'000.0, 200);
}

}  // namespace steelnet::flowmon
