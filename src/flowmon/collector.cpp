#include "flowmon/collector.hpp"

#include <algorithm>

#include "obs/hub.hpp"

namespace steelnet::flowmon {

CollectorNode::CollectorNode(net::MacAddress mac, PeriodicityConfig cfg)
    : mac_(mac), cfg_(cfg) {}

void CollectorNode::handle_frame(net::Frame frame, net::PortId in_port) {
  observe_frame(frame, in_port);
  ++counters_.frames_in;
  if ((frame.dst != mac_ && !frame.dst.is_broadcast()) ||
      frame.ethertype != net::EtherType::kFlowmonExport) {
    ++counters_.frames_filtered;
    return;
  }
  const auto msg = decode_message(frame.payload, templates_);
  if (!msg.has_value()) {
    ++counters_.malformed;
    return;
  }
  ++counters_.messages;
  counters_.templates_learned += msg->templates_learned;
  counters_.records_without_template += msg->records_without_template;

  // IPFIX sequence accounting: the header carries the count of data
  // records sent before this message, so a jump means lost records.
  // Exporters start at sequence 0, so even the first message from a new
  // observation domain reveals records lost before first contact.
  const auto domain = msg->header.observation_domain;
  const auto it = next_sequence_.find(domain);
  const std::uint32_t expected = it != next_sequence_.end() ? it->second : 0;
  if (msg->header.sequence > expected) {
    counters_.lost_records += msg->header.sequence - expected;
  }
  next_sequence_[domain] =
      msg->header.sequence + static_cast<std::uint32_t>(msg->records.size());

  for (const ExportRecord& r : msg->records) {
    ++counters_.records;
    absorb(r);
  }
}

void CollectorNode::absorb(const ExportRecord& r) {
  FlowAccum& a = flows_[r.key];
  const bool first_record = a.incarnations == 0 && !a.has_live;
  if (first_record || r.first_seen < a.first_seen) {
    a.first_seen = r.first_seen;
  }
  if (first_record || r.last_seen > a.last_seen) a.last_seen = r.last_seen;
  // Only multi-packet records carry a measured minimum IAT. Decoded
  // records are wire data (an exporter bug or a corrupted-but-parseable
  // frame can carry the SimTime::max() sentinel), so the sentinel is
  // rejected here too, not just at view time.
  if (r.packets >= 2 && r.min_iat != sim::SimTime::max() &&
      r.min_iat < a.min_iat) {
    a.min_iat = r.min_iat;
  }
  // Keep the cadence estimate from the best-sampled record.
  if (r.packets >= a.cadence_packets) {
    a.cadence_packets = r.packets;
    a.mean_iat = r.mean_iat;
    a.jitter = r.jitter;
  }

  // Records carry absolute totals since their incarnation began, so a
  // checkpoint overwrites the live record; a closing record folds the
  // incarnation into the finished totals.
  a.live = r;
  a.has_live = true;
  if (r.end_reason == EndReason::kActiveTimeout) {
    a.ended = false;
    return;
  }
  a.done_packets += r.packets;
  a.done_bytes += r.bytes;
  a.done_wire_bytes += r.wire_bytes;
  a.has_live = false;
  ++a.incarnations;
  // A forced flush means the observation window closed on a still-running
  // flow -- that is precisely an open-ended flow.
  a.ended = r.end_reason != EndReason::kForcedEnd;
}

FlowView CollectorNode::view_of(const FlowKey& key,
                                const FlowAccum& a) const {
  FlowView v;
  v.key = key;
  v.packets = a.done_packets + (a.has_live ? a.live.packets : 0);
  v.bytes = a.done_bytes + (a.has_live ? a.live.bytes : 0);
  v.wire_bytes = a.done_wire_bytes + (a.has_live ? a.live.wire_bytes : 0);
  v.first_seen = a.first_seen;
  v.last_seen = a.last_seen;
  v.min_iat = a.min_iat == sim::SimTime::max() ? sim::SimTime::zero()
                                               : a.min_iat;
  v.mean_iat = a.mean_iat;
  v.jitter = a.jitter;
  v.incarnations = a.incarnations + (a.has_live ? 1 : 0);
  v.open_ended = !a.ended;
  const sim::SimTime tolerance{std::max<std::int64_t>(
      static_cast<std::int64_t>(cfg_.jitter_fraction *
                                double(a.mean_iat.nanos())),
      cfg_.jitter_floor.nanos())};
  v.periodic = a.cadence_packets >= cfg_.min_packets &&
               a.mean_iat > sim::SimTime::zero() && a.jitter <= tolerance;
  return v;
}

std::vector<FlowView> CollectorNode::flows() const {
  std::vector<FlowView> out;
  out.reserve(flows_.size());
  for (const auto& [key, accum] : flows_) out.push_back(view_of(key, accum));
  return out;
}

std::vector<core::FlowStats> CollectorNode::measured_stats() const {
  std::vector<core::FlowStats> out;
  out.reserve(flows_.size());
  for (const FlowView& v : flows()) {
    core::FlowStats s;
    s.total_bytes = v.bytes;
    s.duration = v.duration();
    s.mean_packet_bytes = v.mean_packet_bytes();
    s.periodic = v.periodic;
    s.open_ended = v.open_ended;
    out.push_back(s);
  }
  return out;
}

std::uint64_t CollectorNode::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const FlowView& v : flows()) {
    mix(v.key.src.bits());
    mix(v.key.dst.bits());
    mix((std::uint64_t(v.key.pcp) << 16) |
        std::uint64_t(static_cast<std::uint16_t>(v.key.ethertype)));
    mix(v.packets);
    mix(v.bytes);
    mix(v.wire_bytes);
    mix(static_cast<std::uint64_t>(v.first_seen.nanos()));
    mix(static_cast<std::uint64_t>(v.last_seen.nanos()));
    mix(static_cast<std::uint64_t>(v.mean_iat.nanos()));
    mix(static_cast<std::uint64_t>(v.jitter.nanos()));
    mix((std::uint64_t(v.open_ended) << 1) | std::uint64_t(v.periodic));
  }
  return h;
}

void CollectorNode::register_metrics(obs::ObsHub& hub) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const std::string& node = name();
  reg.bind_counter({node, "flowmon", "frames_in"}, &counters_.frames_in);
  reg.bind_counter({node, "flowmon", "frames_filtered"},
                   &counters_.frames_filtered);
  reg.bind_counter({node, "flowmon", "messages"}, &counters_.messages);
  reg.bind_counter({node, "flowmon", "malformed"}, &counters_.malformed);
  reg.bind_counter({node, "flowmon", "records"}, &counters_.records);
  reg.bind_counter({node, "flowmon", "templates_learned"},
                   &counters_.templates_learned);
  reg.bind_counter({node, "flowmon", "records_without_template"},
                   &counters_.records_without_template);
  reg.bind_counter({node, "flowmon", "lost_records"},
                   &counters_.lost_records);
}

}  // namespace steelnet::flowmon
