// steelnet::process -- physical plant models closed through the PLC loop.
//
// These give the examples and availability experiments something real to
// control: when the watchdog halts a device, a conveyor actually stops
// and the production count actually flattens.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet::process {

/// A plant model with byte-image I/O compatible with profinet::IoDevice.
class Process {
 public:
  virtual ~Process() = default;

  /// Advances physics by `dt` seconds.
  virtual void step(double dt) = 0;

  /// Sensor image (device -> controller), `bytes` long.
  [[nodiscard]] virtual std::vector<std::uint8_t> sense(
      std::size_t bytes) const = 0;

  /// Actuator image (controller -> device). `run` false = safe state:
  /// implementations must de-energize.
  virtual void actuate(const std::vector<std::uint8_t>& outputs,
                       bool run) = 0;
};

/// A belt moving items toward a photo eye at its end.
///
/// Outputs (from PLC): byte 0 = motor on; bytes 1..2 = speed, mm/s (u16).
/// Inputs (to PLC): bytes 0..3 = position, mm (u32);
///                  byte 4 = item-at-end photo eye.
class Conveyor final : public Process {
 public:
  struct Params {
    double length_m = 2.0;
    double max_speed_mps = 1.0;
  };
  Conveyor();
  explicit Conveyor(Params params);

  void step(double dt) override;
  [[nodiscard]] std::vector<std::uint8_t> sense(
      std::size_t bytes) const override;
  void actuate(const std::vector<std::uint8_t>& outputs, bool run) override;

  [[nodiscard]] double position_m() const { return position_; }
  [[nodiscard]] bool motor_on() const { return motor_on_; }
  [[nodiscard]] std::uint64_t items_completed() const { return items_; }
  [[nodiscard]] bool item_at_end() const;

 private:
  Params params_;
  double position_ = 0.0;
  double speed_setpoint_ = 0.0;
  bool motor_on_ = false;
  std::uint64_t items_ = 0;
};

/// A liquid tank with a controllable inflow valve and fixed demand.
///
/// Outputs: byte 0 = valve opening, 0..200 (= 0..2 l/s inflow).
/// Inputs: bytes 0..3 = level in centilitres (u32).
class TankLevel final : public Process {
 public:
  struct Params {
    double capacity_l = 100.0;
    double demand_lps = 0.5;  ///< constant outflow while above empty
    double initial_l = 50.0;
  };
  TankLevel();
  explicit TankLevel(Params params);

  void step(double dt) override;
  [[nodiscard]] std::vector<std::uint8_t> sense(
      std::size_t bytes) const override;
  void actuate(const std::vector<std::uint8_t>& outputs, bool run) override;

  [[nodiscard]] double level_l() const { return level_; }
  [[nodiscard]] std::uint64_t overflow_events() const { return overflows_; }
  [[nodiscard]] std::uint64_t dry_events() const { return dry_; }

 private:
  Params params_;
  double level_;
  double inflow_lps_ = 0.0;
  std::uint64_t overflows_ = 0;
  std::uint64_t dry_ = 0;
  bool was_overflowing_ = false;
  bool was_dry_ = false;
};

/// One rotary robot joint tracking a commanded angle.
///
/// Outputs: bytes 0..1 = target angle, centidegrees (i16).
/// Inputs: bytes 0..1 = actual angle, centidegrees (i16);
///         byte 2 = in-position flag (|err| < 0.5 deg).
class RobotAxis final : public Process {
 public:
  struct Params {
    double max_velocity_dps = 180.0;  ///< degrees per second
    double tolerance_deg = 0.5;
  };
  RobotAxis();
  explicit RobotAxis(Params params);

  void step(double dt) override;
  [[nodiscard]] std::vector<std::uint8_t> sense(
      std::size_t bytes) const override;
  void actuate(const std::vector<std::uint8_t>& outputs, bool run) override;

  [[nodiscard]] double angle_deg() const { return angle_; }
  [[nodiscard]] double target_deg() const { return target_; }
  [[nodiscard]] bool in_position() const;
  [[nodiscard]] double max_tracking_error_deg() const { return max_error_; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  Params params_;
  double angle_ = 0.0;
  double target_ = 0.0;
  double max_error_ = 0.0;
  bool halted_ = false;
};

/// Wires a Process to an IoDevice and steps it on a fixed grid. Returns
/// the stepping task; destroy it to freeze the physics.
std::unique_ptr<sim::PeriodicTask> bind_process(
    profinet::IoDevice& device, Process& process, sim::Simulator& sim,
    sim::SimTime step_dt = sim::milliseconds(1));

}  // namespace steelnet::process
