#include "process/process.hpp"

#include <algorithm>
#include <cmath>

namespace steelnet::process {

namespace {

void put_u32(std::vector<std::uint8_t>& v, std::size_t at, std::uint32_t x) {
  for (std::size_t i = 0; i < 4 && at + i < v.size(); ++i) {
    v[at + i] = static_cast<std::uint8_t>(x >> (8 * i));
  }
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& v, std::size_t at) {
  if (at + 2 > v.size()) return 0;
  return static_cast<std::uint16_t>(v[at] | (v[at + 1] << 8));
}

}  // namespace

Conveyor::Conveyor() : Conveyor(Params{}) {}

Conveyor::Conveyor(Params params) : params_(params) {}

void Conveyor::step(double dt) {
  if (!motor_on_) return;
  position_ += std::min(speed_setpoint_, params_.max_speed_mps) * dt;
  if (position_ >= params_.length_m) {
    position_ -= params_.length_m;
    ++items_;
  }
}

bool Conveyor::item_at_end() const {
  return position_ >= params_.length_m * 0.95;
}

std::vector<std::uint8_t> Conveyor::sense(std::size_t bytes) const {
  std::vector<std::uint8_t> v(bytes, 0);
  put_u32(v, 0, static_cast<std::uint32_t>(position_ * 1000.0));
  if (bytes > 4) v[4] = item_at_end() ? 1 : 0;
  return v;
}

void Conveyor::actuate(const std::vector<std::uint8_t>& outputs, bool run) {
  if (!run || outputs.empty()) {
    motor_on_ = false;  // safe state: belt stops
    return;
  }
  motor_on_ = outputs[0] != 0;
  speed_setpoint_ = double(get_u16(outputs, 1)) / 1000.0;
}

TankLevel::TankLevel() : TankLevel(Params{}) {}

TankLevel::TankLevel(Params params)
    : params_(params), level_(params.initial_l) {}

void TankLevel::step(double dt) {
  level_ += inflow_lps_ * dt;
  if (level_ > 0) level_ -= params_.demand_lps * dt;
  if (level_ >= params_.capacity_l) {
    level_ = params_.capacity_l;
    if (!was_overflowing_) ++overflows_;
    was_overflowing_ = true;
  } else {
    was_overflowing_ = false;
  }
  if (level_ <= 0) {
    level_ = 0;
    if (!was_dry_) ++dry_;
    was_dry_ = true;
  } else {
    was_dry_ = false;
  }
}

std::vector<std::uint8_t> TankLevel::sense(std::size_t bytes) const {
  std::vector<std::uint8_t> v(bytes, 0);
  put_u32(v, 0, static_cast<std::uint32_t>(level_ * 100.0));
  return v;
}

void TankLevel::actuate(const std::vector<std::uint8_t>& outputs, bool run) {
  if (!run || outputs.empty()) {
    inflow_lps_ = 0.0;  // safe state: valve closed
    return;
  }
  inflow_lps_ = std::min<double>(outputs[0], 200) / 100.0;
}

RobotAxis::RobotAxis() : RobotAxis(Params{}) {}

RobotAxis::RobotAxis(Params params) : params_(params) {}

void RobotAxis::step(double dt) {
  if (halted_) return;
  const double err = target_ - angle_;
  const double max_step = params_.max_velocity_dps * dt;
  angle_ += std::clamp(err, -max_step, max_step);
  max_error_ = std::max(max_error_, std::abs(target_ - angle_));
}

bool RobotAxis::in_position() const {
  return std::abs(target_ - angle_) < params_.tolerance_deg;
}

std::vector<std::uint8_t> RobotAxis::sense(std::size_t bytes) const {
  std::vector<std::uint8_t> v(bytes, 0);
  const auto centi = static_cast<std::int16_t>(angle_ * 100.0);
  if (bytes >= 2) {
    v[0] = static_cast<std::uint8_t>(centi);
    v[1] = static_cast<std::uint8_t>(centi >> 8);
  }
  if (bytes > 2) v[2] = in_position() ? 1 : 0;
  return v;
}

void RobotAxis::actuate(const std::vector<std::uint8_t>& outputs, bool run) {
  if (!run || outputs.size() < 2) {
    halted_ = true;  // safe stop: axis freezes in place
    return;
  }
  halted_ = false;
  const auto centi = static_cast<std::int16_t>(
      outputs[0] | (outputs[1] << 8));
  target_ = double(centi) / 100.0;
}

std::unique_ptr<sim::PeriodicTask> bind_process(profinet::IoDevice& device,
                                                Process& process,
                                                sim::Simulator& sim,
                                                sim::SimTime step_dt) {
  device.set_input_provider(
      [&process](std::size_t bytes) { return process.sense(bytes); });
  device.set_output_handler(
      [&process](const std::vector<std::uint8_t>& out, bool run) {
        process.actuate(out, run);
      });
  return std::make_unique<sim::PeriodicTask>(
      sim, sim.now(), step_dt,
      [&process, step_dt] { process.step(step_dt.seconds()); });
}

}  // namespace steelnet::process
