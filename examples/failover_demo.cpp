// InstaPLC failover, end to end with physics: two vPLCs, one tank-level
// I/O device behind an InstaPLC-enabled programmable switch. The primary
// crashes mid-run; the in-network switchover keeps the valve controlled
// and the tank never runs dry.
#include <iostream>

#include "core/report.hpp"
#include "instaplc/instaplc.hpp"
#include "process/process.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<sdn::SdnSwitchNode>("instaplc-switch");
  auto& dev_host = network.add_node<net::HostNode>("tank-io",
                                                   net::MacAddress{0xD1});
  auto& v1_host = network.add_node<net::HostNode>("vplc-1",
                                                  net::MacAddress{0x11});
  auto& v2_host = network.add_node<net::HostNode>("vplc-2",
                                                  net::MacAddress{0x22});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1_host.id(), 0, sw.id(), 1);
  network.connect(v2_host.id(), 0, sw.id(), 2);

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});

  // Both vPLCs run the same bang-bang level control: valve open when the
  // level (centilitres, input bytes 0..3) is below 60 l.
  auto make_outputs = [](const std::vector<std::uint8_t>& inputs) {
    std::uint32_t centi = 0;
    for (int i = 3; i >= 0; --i) {
      centi = (centi << 8) |
              (std::size_t(i) < inputs.size() ? inputs[std::size_t(i)] : 0);
    }
    const double level_l = centi / 100.0;
    std::vector<std::uint8_t> out(8, 0);
    out[0] = level_l < 60.0 ? 150 : 0;  // 1.5 l/s inflow when low
    return out;
  };
  auto wire_controller = [&](profinet::CyclicController& c) {
    auto* latest = new std::vector<std::uint8_t>();  // owned by lambdas
    c.set_input_handler(
        [latest](const std::vector<std::uint8_t>& in) { *latest = in; });
    c.set_output_provider([latest, make_outputs](std::size_t) {
      return make_outputs(*latest);
    });
  };

  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  profinet::CyclicController vplc1(v1_host, c1);
  wire_controller(vplc1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(v2_host, c2);
  wire_controller(vplc2);

  process::TankLevel tank({.capacity_l = 100, .demand_lps = 1.0,
                           .initial_l = 55});
  auto stepper = process::bind_process(device, tank, simulator);

  // Timeline.
  vplc1.connect();
  simulator.schedule_at(200_ms, [&] { vplc2.connect(); });
  simulator.schedule_at(10_s, [&] {
    std::cout << "t=10s  vPLC-1 crashes (level "
              << core::TextTable::num(tank.level_l(), 1) << " l)\n";
    vplc1.stop();
  });

  sim::TimeSeriesBinner level(1_s);
  sim::PeriodicTask sampler(simulator, 0_ns, 1_s, [&] {
    level.record(simulator.now(), tank.level_l());
  });

  simulator.run_until(30_s);

  std::cout << "t=30s  done. level "
            << core::TextTable::num(tank.level_l(), 1) << " l\n\n";
  std::cout << core::ascii_timeseries(level.bins(), "tank level (l), 1 s bins")
            << '\n';

  core::TextTable table({"metric", "value"});
  table.add_row({"switchover",
                 app.switched_over()
                     ? app.stats().switchover_at->to_string()
                     : "(none)"});
  table.add_row({"device watchdog trips",
                 std::to_string(device.counters().watchdog_trips)});
  table.add_row({"tank dry events", std::to_string(tank.dry_events())});
  table.add_row({"tank overflow events",
                 std::to_string(tank.overflow_events())});
  table.add_row({"vPLC-2 now controls, cyclic rx",
                 std::to_string(vplc2.counters().cyclic_rx)});
  table.print(std::cout);

  std::cout << "\nwithout InstaPLC this run loses the valve for as long as "
               "recovery takes; with it the device never noticed (§4, "
               "Fig. 5).\n";
  return 0;
}
