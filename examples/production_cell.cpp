// A realistic production cell (the paper's "future factory" slice):
//
//   * one TSN-capable cell switch with a protected window for cyclic
//     control traffic;
//   * a vPLC on a *virtualized* host (PREEMPT_RT + vswitch jitter, §2.1)
//     running a start/stop latch plus an item counter in IL;
//   * a conveyor and a robot axis as two I/O devices;
//   * a chatty best-effort camera stream sharing the cell uplink.
//
// The example prints the control-loop health (cycle jitter seen by the
// devices) with and without the paper's §2.1 concerns stacked on.
#include <iostream>
#include <memory>

#include "core/report.hpp"
#include "host/host_path.hpp"
#include "net/switch_node.hpp"
#include "plc/plc.hpp"
#include "process/process.hpp"
#include "profinet/io_device.hpp"
#include "sim/stats.hpp"
#include "tsn/gcl.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig swcfg;
  swcfg.mac_learning = true;
  auto& sw = network.add_node<net::SwitchNode>("cell-switch", swcfg);

  auto& plc_host = network.add_node<net::HostNode>("vplc",
                                                   net::MacAddress{0xA1});
  auto& belt_host = network.add_node<net::HostNode>("belt-io",
                                                    net::MacAddress{0xB1});
  auto& robot_host = network.add_node<net::HostNode>("robot-io",
                                                     net::MacAddress{0xB2});
  auto& cam_host = network.add_node<net::HostNode>("camera",
                                                   net::MacAddress{0xC1});
  network.connect(plc_host.id(), 0, sw.id(), 0);
  network.connect(belt_host.id(), 0, sw.id(), 1);
  network.connect(robot_host.id(), 0, sw.id(), 2);
  network.connect(cam_host.id(), 0, sw.id(), 3);

  // The vPLC lives in a VM: its packets inherit host-stack jitter.
  auto host_path = host::HostProfile::virtualized_rt(/*seed=*/7);
  plc_host.set_host_path(host_path.get());

  // TSN: protect the first 50 us of every 2 ms cycle for pcp >= 6 on the
  // port toward the vPLC (where control and camera traffic share a wire).
  tsn::GateControlList gcl = tsn::make_protected_window_gcl(2_ms, 50_us, 6);
  sw.set_gate_controller(0, &gcl);

  // Belt controller + program: latch M0 on at startup, count items via
  // the photo eye (input bit 32 = byte 4 bit 0), stop after 25 items.
  profinet::ControllerConfig belt_cfg;
  belt_cfg.ar_id = 1;
  belt_cfg.device_mac = belt_host.mac();
  belt_cfg.cycle = 2_ms;
  profinet::CyclicController belt_ctrl(plc_host, belt_cfg);
  plc::IlProgram belt_prog("belt-latch-and-count", {
      // M0 latches "line running" once (LDN M1 -> SET M0; M1 marks init).
      {plc::IlOp::kLdn, plc::Area::kMarker, 1},
      {plc::IlOp::kSet, plc::Area::kMarker, 0},
      {plc::IlOp::kLdn, plc::Area::kMarker, 1},
      {plc::IlOp::kSet, plc::Area::kMarker, 1},
      // C0 counts photo-eye rising edges, preset 25.
      {plc::IlOp::kLd, plc::Area::kInput, 32},
      {plc::IlOp::kCtu, plc::Area::kCounter, 0, 25},
      {plc::IlOp::kSt, plc::Area::kMarker, 2},  // M2 = batch done
      // Motor runs while line is on and batch not done.
      {plc::IlOp::kLd, plc::Area::kMarker, 0},
      {plc::IlOp::kAndn, plc::Area::kMarker, 2},
      {plc::IlOp::kSt, plc::Area::kOutput, 0},
  });
  plc::Plc belt_plc(belt_ctrl, std::move(belt_prog));
  for (int b = 0; b < 16; ++b) {
    belt_plc.image().outputs[std::size_t(8 + b)] = (1500 >> b) & 1;
  }

  profinet::IoDevice belt_dev(belt_host);
  process::Conveyor belt({.length_m = 0.4, .max_speed_mps = 2.0});
  auto belt_stepper = process::bind_process(belt_dev, belt, simulator);

  // Robot device simply tracks a fixed pick angle here (driven by raw
  // output bytes; a second controller would normally own it -- we reuse
  // the cell's spare I/O path to show two devices coexisting).
  profinet::IoDevice robot_dev(robot_host);
  process::RobotAxis robot;
  auto robot_stepper = process::bind_process(robot_dev, robot, simulator);

  // Camera: best-effort 1500 B frames every 150 us toward the vPLC
  // (vision stream), pcp 0.
  sim::PeriodicTask camera(simulator, 0_ns, 150_us, [&] {
    net::Frame f;
    f.dst = plc_host.mac();
    f.pcp = 0;
    f.payload.resize(1500);
    cam_host.send(std::move(f));
  });

  // Measure the belt device's observed cycle jitter.
  sim::SampleSet inter_arrival_us;
  std::optional<sim::SimTime> last_rx;
  belt_dev.set_output_handler(
      [&](const std::vector<std::uint8_t>& out, bool run) {
        belt.actuate(out, run);
        const auto now = simulator.now();
        if (last_rx) inter_arrival_us.add((now - *last_rx).micros());
        last_rx = now;
      });

  belt_plc.start();
  simulator.run_until(10_s);

  std::cout << "=== production cell after 10 s ===\n\n";
  core::TextTable table({"metric", "value"});
  table.add_row({"belt items completed",
                 std::to_string(belt.items_completed())});
  table.add_row({"batch target", "25"});
  table.add_row({"belt motor", belt.motor_on() ? "on" : "off (batch done)"});
  table.add_row({"PLC scans", std::to_string(belt_plc.scans())});
  table.add_row({"device watchdog trips",
                 std::to_string(belt_dev.counters().watchdog_trips)});
  table.add_row({"camera frames sent",
                 std::to_string(cam_host.counters().sent)});
  table.print(std::cout);

  std::cout << "\ncontrol cycle as seen by the belt device (nominal "
               "2000 us):\n"
            << core::quantile_table({{"inter-arrival", &inter_arrival_us}},
                                    "us");
  std::cout << "\nthe spread around 2000 us is the §2.1 story: virtualized "
               "host jitter survives even a TSN-protected wire.\n";
  return 0;
}
