// Write, verify and measure your own XDP program with Traffic Reflection.
//
// This example assembles a small packet-filtering reflector (drop frames
// whose first payload word is odd, reflect the rest), shows the verifier
// rejecting an unsafe sibling, and runs the accepted program under the
// Fig. 3 measurement harness.
#include <iostream>

#include "core/report.hpp"
#include "ebpf/assembler.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/xdp.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tap/tap_node.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  // --- 1. write a program with the fluent assembler -------------------
  ebpf::Assembler a("parity-reflector");
  a.ld_pkt_dw(2, 0);            // r2 = first payload word
  a.and_imm(2, 1);              // r2 &= 1
  a.jeq_imm(2, 1, "drop");      // odd -> drop
  a.ret(ebpf::XdpVerdict::kTx); // even -> reflect
  a.label("drop");
  a.ret(ebpf::XdpVerdict::kDrop);
  ebpf::Program good = a.finish();

  const auto verdict = ebpf::verify(good);
  std::cout << "verifier on parity-reflector: "
            << (verdict.ok ? "accepted" : verdict.error) << "\n";

  // --- 2. the verifier rejects what the kernel would ------------------
  ebpf::Assembler bad("uninit-read");
  bad.mov_reg(0, 5);  // r5 was never written
  bad.exit();
  const auto rejected = ebpf::verify(bad.finish());
  std::cout << "verifier on uninit-read:      " << rejected.error << "\n\n";

  // --- 3. measure it with a TAP (Fig. 3 methodology) ------------------
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sender = network.add_node<net::HostNode>("sender",
                                                 net::MacAddress{0x10});
  auto& tap = network.add_node<tap::TapNode>("tap");
  auto& dut = network.add_node<net::HostNode>("dut", net::MacAddress{0x20});
  network.connect(sender.id(), 0, tap.id(), tap::TapNode::kPortA);
  network.connect(tap.id(), tap::TapNode::kPortB, dut.id(), 0);

  ebpf::XdpHook hook(good, ebpf::CostParams{}, /*seed=*/3);
  dut.set_nic_processor(&hook);

  std::uint64_t reflected = 0;
  sender.set_receiver([&](net::Frame, sim::SimTime) { ++reflected; });

  std::uint64_t seq = 0;
  sim::PeriodicTask sending(simulator, 0_ns, 100_us, [&] {
    net::Frame f;
    f.dst = dut.mac();
    f.flow_id = 1;
    f.seq = seq;
    f.payload.assign(32, 0);
    f.write_u64(0, seq++);  // alternates even/odd
    sender.send(std::move(f));
  });
  simulator.run_until(100_ms);

  core::TextTable table({"counter", "value"});
  table.add_row({"frames sent", std::to_string(seq)});
  table.add_row({"XDP_TX (reflected)", std::to_string(hook.stats().tx)});
  table.add_row({"XDP_DROP (odd words)", std::to_string(hook.stats().drop)});
  table.add_row({"echoes back at sender", std::to_string(reflected)});
  table.add_row({"tap frames observed", std::to_string(tap.frames_seen())});
  table.print(std::cout);

  std::cout << "\nevery timestamp above came from one clock -- the tap's "
               "-- which is the whole point of Traffic Reflection (§3).\n";
  return 0;
}
