// Automated optical inspection on a factory network (§5): pick a target
// accuracy, let the degradation model tell you the frame size each
// camera must ship, then compare how the three topologies carry the
// resulting traffic -- and what accuracy you could actually afford if
// latency (not bandwidth) is your budget.
#include <iostream>

#include "core/report.hpp"
#include "mlnet/inference.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto app = mlnet::MlApp::kDefectDetection;

  std::cout << "=== accuracy vs data quantity ("
            << mlnet::to_string(app) << ") ===\n\n";
  core::TextTable acc_table({"target accuracy", "frame bytes",
                             "per-camera load"});
  for (double target : {0.70, 0.80, 0.90, 0.95}) {
    const auto bytes = mlnet::required_frame_bytes(app, target);
    acc_table.add_row({core::TextTable::pct(target, 0),
                       std::to_string(bytes),
                       core::TextTable::num(
                           mlnet::client_offered_bps(app, target) / 1e6, 2) +
                           " Mb/s"});
  }
  acc_table.print(std::cout);

  std::cout << "\n=== 96 inspection cameras at 95% target accuracy ===\n\n";
  core::TextTable lat_table({"topology", "median (ms)", "p99 (ms)",
                             "switches", "servers"});
  for (mlnet::TopologyKind k : mlnet::all_topologies()) {
    mlnet::InferenceConfig cfg;
    cfg.topology = k;
    cfg.app = app;
    cfg.clients = 96;
    cfg.duration = 2_s;
    cfg.target_accuracy = 0.95;
    const auto r = mlnet::run_inference_experiment(cfg);
    lat_table.add_row({r.topology,
                       core::TextTable::num(r.latency_ms.median(), 3),
                       core::TextTable::num(r.latency_ms.percentile(99), 3),
                       std::to_string(r.switches),
                       std::to_string(r.servers)});
  }
  lat_table.print(std::cout);

  std::cout << "\n=== corruption robustness (why the network matters at "
               "all) ===\n\n";
  core::TextTable rob({"severity", "compression", "frame loss", "jitter"});
  for (double sev : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    rob.add_row({core::TextTable::num(sev, 2),
                 core::TextTable::pct(
                     mlnet::accuracy(app, mlnet::Corruption::kCompression,
                                     sev), 1),
                 core::TextTable::pct(
                     mlnet::accuracy(app, mlnet::Corruption::kFrameLoss, sev),
                     1),
                 core::TextTable::pct(
                     mlnet::accuracy(app, mlnet::Corruption::kJitter, sev),
                     1)});
  }
  rob.print(std::cout);
  std::cout << "\nmodel robustness alone is not enough without a "
               "network-aware design (§5, [29, 85]).\n";
  return 0;
}
