// steelnet quickstart: a virtual PLC controls a conveyor belt over a
// simulated industrial network.
//
// What happens:
//   1. build a tiny network: vPLC host -- switch -- I/O device host
//   2. write a 2-instruction IEC 61131-3 IL program (motor = always on)
//   3. attach a conveyor to the I/O device and start everything
//   4. run one simulated second; watch the belt produce items
//   5. kill the vPLC; the PROFINET-style watchdog halts the belt safely
#include <iostream>

#include "net/switch_node.hpp"
#include "plc/plc.hpp"
#include "process/process.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  // 1. The network.
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<net::SwitchNode>("cell-switch");
  auto& plc_host = network.add_node<net::HostNode>("vplc",
                                                   net::MacAddress{0xA1});
  auto& dev_host = network.add_node<net::HostNode>("io-device",
                                                   net::MacAddress{0xB1});
  network.connect(plc_host.id(), 0, sw.id(), 0);
  network.connect(dev_host.id(), 0, sw.id(), 1);

  // 2. The control program: Q0 (motor contactor) = NOT M0, M0 stays 0.
  plc::IlProgram program("run-belt", {
      {plc::IlOp::kLdn, plc::Area::kMarker, 0},
      {plc::IlOp::kSt, plc::Area::kOutput, 0},
  });

  // The cyclic protocol endpoints (2 ms cycle, watchdog after 3 silent
  // cycles -- the PROFINET defaults used throughout the paper).
  profinet::ControllerConfig cfg;
  cfg.device_mac = dev_host.mac();
  cfg.cycle = 2_ms;
  profinet::CyclicController controller(plc_host, cfg);
  profinet::IoDevice device(dev_host);
  plc::Plc vplc(controller, std::move(program));
  // Speed setpoint: output bytes 1..2 = 1000 mm/s (bits 8..23).
  for (int b = 0; b < 16; ++b) {
    vplc.image().outputs[std::size_t(8 + b)] = (1000 >> b) & 1;
  }

  // 3. The plant.
  process::Conveyor belt({.length_m = 0.5, .max_speed_mps = 2.0});
  auto stepper = process::bind_process(device, belt, simulator);

  // 4. Run.
  vplc.start();
  simulator.run_until(1_s);
  std::cout << "after 1 s: belt motor " << (belt.motor_on() ? "ON" : "off")
            << ", items completed: " << belt.items_completed()
            << ", PLC scans: " << vplc.scans() << "\n";

  // 5. Fail the vPLC; safety halts the belt within 3 cycles (6 ms).
  vplc.stop();
  simulator.run_until(1_s + 50_ms);
  std::cout << "50 ms after vPLC crash: belt motor "
            << (belt.motor_on() ? "ON (!!)" : "off (safe state)")
            << ", device state: " << profinet::to_string(device.state())
            << ", watchdog trips: " << device.counters().watchdog_trips
            << "\n";

  const auto items = belt.items_completed();
  simulator.run_until(3_s);
  std::cout << "2 s later: items still " << belt.items_completed()
            << (belt.items_completed() == items ? " (production halted)"
                                                : " (?!)")
            << "\n";
  return 0;
}
